//! Endpoint implementations over a shared [`AppState`].
//!
//! The consensus endpoint checks the [`ResponseCache`] first: a request whose
//! every method outcome is already cached is answered in `O(1)` without
//! touching the engine (no queue slot, no precedence build, no solve). Anything
//! else is submitted through [`mani_engine::ConsensusEngine::submit_batch_async`],
//! so the engine's bounded queue backpressures the HTTP layer —
//! [`mani_engine::EngineError::Overloaded`] surfaces as `429 Too Many Requests`.

use std::collections::HashMap;
use std::io::Write;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use mani_aggregation::CopelandAggregator;
use mani_core::{MethodKind, MfcrContext};
use mani_engine::{
    BatchHandle, ConsensusEngine, ConsensusRequest, ConsensusResponse, EngineConfig, EngineDataset,
    EngineError, JobHandle, JobId, JobStatus,
};
use mani_fairness::{FairnessAudit, FairnessThresholds};
use mani_obs::{PromWriter, SlowEntry, SlowRing, Span, TraceTimeline};
use mani_ranking::GroupIndex;
use serde::{Serialize, Value};

use crate::datasets::{dataset_id, DatasetRegistry};
use crate::http::{ChunkedResponse, HttpError, HttpRequest, HttpResponse};
use crate::json::{
    attribute_names_json, error_body, method_result_json, obj, parse_body, parse_consensus_spec,
    parse_dataset, render, resolve_spec_dataset, s, with_entry, ConsensusSpec,
};
use crate::metrics::{EndpointMetrics, ServeCounters, LATENCY_BUCKET_BOUNDS_US};
use crate::response_cache::ResponseCache;
use crate::router::{route, Route, Routed};

/// Most jobs tracked by the registry before completed ones are pruned
/// (oldest first), bounding registry memory under sustained async traffic.
pub const MAX_TRACKED_JOBS: usize = 4096;

/// Worst requests kept in the in-memory slow-request ring (`/v1/stats`,
/// `"slow_requests"`).
pub const SLOW_RING_CAPACITY: usize = 16;

/// Per-request observability context, created once per dispatched request:
/// the request id (taken from a well-formed incoming `x-request-id` header or
/// freshly generated) and the serve-side phase timeline (`parse`,
/// `cache_probe`, `submit`, `wait`, `render`) feeding the access log and the
/// slow-request ring.
#[derive(Debug, Clone)]
pub struct RequestContext {
    id: String,
    trace: Arc<TraceTimeline>,
}

impl RequestContext {
    fn for_request(request: &HttpRequest) -> Self {
        Self {
            id: mani_obs::request_id_from_header(request.header("x-request-id")),
            trace: Arc::new(TraceTimeline::new()),
        }
    }

    /// The id echoed on the response as `x-request-id`.
    pub fn id(&self) -> &str {
        &self.id
    }
}

/// Outcome of dispatching one request: either a fully materialized response,
/// or a streaming consensus batch whose NDJSON lines are produced as jobs
/// complete (written with chunked framing by [`crate::server`]).
#[derive(Debug)]
pub enum Handled {
    /// A complete response, ready to serialize with a `Content-Length`.
    Response(HttpResponse),
    /// A `"stream": true` consensus batch: one NDJSON line per request, in
    /// completion order, plus a terminal summary line.
    Stream(ConsensusStream),
}

/// How one spec of a consensus request is satisfied: replayed from the
/// response cache, or submitted to the engine (index into the submitted
/// subset).
#[derive(Debug)]
enum Disposition {
    Cached(Vec<Arc<Value>>),
    Submitted(usize),
}

/// A pending `"stream": true` consensus batch: the parsed specs, the cache
/// replays, and the engine [`BatchHandle`] for everything that needs solving.
///
/// Lines are emitted cached-first (those results exist before any solve), then
/// in engine completion order; the payload of each line is built by the same
/// rendering path as the buffered endpoint, so streamed and non-streamed
/// results are bit-identical and equally replayable through the response
/// cache.
#[derive(Debug)]
pub struct ConsensusStream {
    specs: Vec<ConsensusSpec>,
    dispositions: Vec<Disposition>,
    batch: BatchHandle,
    /// Maps engine batch index → spec index.
    batch_to_spec: Vec<usize>,
    started: Instant,
    /// Request id echoed on the chunked response head and the access log.
    request_id: String,
    /// The originating request's serve-side timeline (parse/submit phases).
    trace: Arc<TraceTimeline>,
}

impl ConsensusStream {
    /// Number of requests in the batch.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// True for an (impossible via the API) empty batch.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// Drives the stream to completion, handing each NDJSON line (newline
    /// included) to `emit` the moment it is available.
    fn emit_lines<E>(
        mut self,
        state: &AppState,
        emit: &mut dyn FnMut(&str) -> Result<(), E>,
    ) -> Result<(), E> {
        let total = self.specs.len();
        let mut completed = 0usize;
        let mut cached = 0usize;
        let mut errors = 0usize;
        let mut total_solve_ms = 0f64;

        // Cache replays are complete before any solve: emit them first, in
        // request order.
        for (index, (spec, disposition)) in self.specs.iter().zip(&self.dispositions).enumerate() {
            if let Disposition::Cached(values) = disposition {
                completed += 1;
                cached += 1;
                emit(&stream_line(
                    index,
                    None,
                    cached_response_json(spec.dataset.name(), values),
                ))?;
            }
        }

        // Engine results stream in as-completed order — the whole point: a
        // cheap Fair-Borda line goes over the wire while a budgeted
        // Fair-Kemeny in the same batch is still searching.
        while let Some(item) = self.batch.wait_next() {
            let spec_index = self.batch_to_spec[item.index];
            let spec = &self.specs[spec_index];
            let job_trace = self.batch.handles()[item.index].trace();
            let payload = {
                let _render = Span::enter(&job_trace, "render");
                state.rendered_response(spec, &item.response)
            };
            completed += 1;
            if !item.response.is_complete() {
                errors += 1;
            }
            total_solve_ms += item.response.total_solve_time.as_secs_f64() * 1e3;
            emit(&stream_line(spec_index, Some(item.id), payload))?;
        }

        // Terminal summary line with batch totals.
        let summary = obj(vec![
            ("summary", Value::Bool(true)),
            ("requests", Value::UInt(total as u64)),
            ("completed", Value::UInt(completed as u64)),
            ("cached", Value::UInt(cached as u64)),
            ("errors", Value::UInt(errors as u64)),
            ("total_solve_time_ms", Value::Float(total_solve_ms)),
        ]);
        emit(&format!("{}\n", render(&summary)))
    }
}

/// One NDJSON result line: the per-request payload prefixed with its batch
/// `index` and `job_id` (`null` for cache replays, which never reach the
/// engine).
fn stream_line(index: usize, job: Option<JobId>, payload: Value) -> String {
    let mut entries = vec![
        ("index".to_string(), Value::UInt(index as u64)),
        (
            "job_id".to_string(),
            match job {
                Some(id) => Value::String(id.to_string()),
                None => Value::Null,
            },
        ),
    ];
    match payload {
        Value::Object(fields) => entries.extend(fields),
        other => entries.push(("payload".to_string(), other)),
    }
    format!("{}\n", render(&Value::Object(entries)))
}

/// The response object for a spec whose every method outcome came from the
/// response cache (shared by the buffered and streaming paths).
fn cached_response_json(dataset: &str, values: &[Arc<Value>]) -> Value {
    obj(vec![
        ("dataset", s(dataset)),
        ("status", s(JobStatus::Done.label())),
        ("cached", Value::Bool(true)),
        (
            "results",
            Value::Array(
                values
                    .iter()
                    .map(|v| with_entry((**v).clone(), "cached", Value::Bool(true)))
                    .collect(),
            ),
        ),
    ])
}

/// Everything the handlers share: the engine, the response cache, the dataset
/// registry, per-endpoint latency histograms, and the async-job registry
/// behind `GET /v1/jobs/{id}`.
#[derive(Debug)]
pub struct AppState {
    engine: ConsensusEngine,
    cache: ResponseCache,
    datasets: DatasetRegistry,
    metrics: EndpointMetrics,
    connections: ServeCounters,
    jobs: Mutex<HashMap<u64, JobEntry>>,
    slow: SlowRing,
    started: Instant,
}

/// One tracked async job: its handle plus what is needed to render and cache
/// its response when a poll observes completion.
#[derive(Debug)]
struct JobEntry {
    handle: JobHandle,
    dataset: Arc<EngineDataset>,
    cache_keys: Vec<String>,
    cached: AtomicBool,
    /// `x-request-id` of the submitting request, surfaced by the job and
    /// trace endpoints so a poll can be correlated with the original access
    /// log line.
    request_id: String,
}

impl AppState {
    /// Builds the state: an engine with `engine_config` and a response cache
    /// bounded to `cache_capacity` entries (`0` = default).
    pub fn new(engine_config: EngineConfig, cache_capacity: usize) -> Self {
        Self {
            engine: ConsensusEngine::with_config(engine_config),
            cache: ResponseCache::new(cache_capacity),
            datasets: DatasetRegistry::default(),
            metrics: EndpointMetrics::new(),
            connections: ServeCounters::new(),
            jobs: Mutex::new(HashMap::new()),
            slow: SlowRing::new(SLOW_RING_CAPACITY),
            started: Instant::now(),
        }
    }

    /// The underlying engine (used by tests and the server banner).
    pub fn engine(&self) -> &ConsensusEngine {
        &self.engine
    }

    /// The response cache (used by tests).
    pub fn response_cache(&self) -> &ResponseCache {
        &self.cache
    }

    /// The persisted dataset registry behind `/v1/datasets`.
    pub fn datasets(&self) -> &DatasetRegistry {
        &self.datasets
    }

    /// Per-endpoint request latency histograms.
    pub fn metrics(&self) -> &EndpointMetrics {
        &self.metrics
    }

    /// Connection-pool counters (updated by [`crate::server`]).
    pub fn connections(&self) -> &ServeCounters {
        &self.connections
    }

    /// Dispatches one parsed HTTP request to its handler. Complete responses
    /// have their latency recorded immediately; a [`Handled::Stream`] records
    /// its latency (under `consensus_stream`) when the stream finishes, since
    /// its wall-clock spans the whole batch drain. Every response — buffered,
    /// streamed, or error — carries the request's `x-request-id` (accepted
    /// from the client or generated here).
    pub fn dispatch(&self, request: &HttpRequest) -> Handled {
        let ctx = RequestContext::for_request(request);
        let routed = route(&request.method, &request.path);
        let label = match &routed {
            Routed::Found(found) => found.metrics_label(),
            Routed::NotFound | Routed::MethodNotAllowed => "other",
        };
        let outcome = match routed {
            Routed::NotFound => Err(HttpError::new(
                404,
                format!("no such endpoint: {} {}", request.method, request.path),
            )),
            Routed::MethodNotAllowed => Err(HttpError::new(
                405,
                format!("{} does not accept {}", request.path, request.method),
            )),
            Routed::Found(Route::Consensus) => self.consensus(request, &ctx),
            Routed::Found(Route::Audit) => self.audit(request).map(Handled::Response),
            Routed::Found(Route::Job(id)) => self.job(&id).map(Handled::Response),
            Routed::Found(Route::JobTrace(id)) => self.job_trace(&id).map(Handled::Response),
            Routed::Found(Route::DatasetCreate) => {
                self.dataset_create(request).map(Handled::Response)
            }
            Routed::Found(Route::DatasetGet(id)) => self.dataset_get(&id).map(Handled::Response),
            Routed::Found(Route::DatasetDelete(id)) => {
                self.dataset_delete(&id).map(Handled::Response)
            }
            Routed::Found(Route::Methods) => Ok(Handled::Response(methods_response())),
            Routed::Found(Route::Stats) => Ok(Handled::Response(self.stats_response())),
            Routed::Found(Route::Version) => Ok(Handled::Response(version_response())),
            Routed::Found(Route::Metrics) => Ok(Handled::Response(self.metrics_response())),
        };
        match outcome {
            // The stream carries the context; its latency, access-log line,
            // and header stamp happen when the drain finishes.
            Ok(Handled::Stream(stream)) => Handled::Stream(stream),
            Ok(Handled::Response(response)) => {
                Handled::Response(self.finish_request(request, label, &ctx, response))
            }
            Err(error) => {
                let response = HttpResponse::json(
                    if error.status == 0 { 400 } else { error.status },
                    error_body(&error.message),
                );
                Handled::Response(self.finish_request(request, label, &ctx, response))
            }
        }
    }

    /// Completes one buffered exchange: records its latency, emits the
    /// access-log line, offers it to the slow ring, and stamps
    /// `x-request-id` onto the response.
    fn finish_request(
        &self,
        request: &HttpRequest,
        label: &'static str,
        ctx: &RequestContext,
        response: HttpResponse,
    ) -> HttpResponse {
        let elapsed = ctx.trace.age();
        self.metrics.record(label, elapsed);
        self.observe(
            label,
            format!("{} {}", request.method, request.path),
            ctx.id.clone(),
            &ctx.trace,
            response.status,
            elapsed,
        );
        response.with_header("x-request-id", ctx.id.clone())
    }

    /// Access-log line plus slow-ring offer, shared by the buffered and
    /// streamed completion paths.
    fn observe(
        &self,
        label: &'static str,
        target: String,
        request_id: String,
        trace: &TraceTimeline,
        status: u16,
        elapsed: Duration,
    ) {
        mani_obs::debug!(
            "http",
            "request",
            req_id = request_id,
            target = target,
            status = status,
            dur_ms = format!("{:.3}", elapsed.as_secs_f64() * 1e3),
        );
        self.slow.record(SlowEntry {
            request_id,
            endpoint: label,
            target,
            status,
            duration_ns: elapsed.as_nanos().min(u128::from(u64::MAX)) as u64,
            phases: trace
                .snapshot()
                .into_iter()
                .map(|phase| (phase.name, phase.duration_ns))
                .collect(),
        });
    }

    /// Dispatches one request to a fully buffered [`HttpResponse`]: a
    /// [`Handled::Stream`] is drained into one NDJSON body. Embedding callers
    /// (and unit tests) use this; the server's connection loop uses
    /// [`AppState::dispatch`] so streamed lines hit the wire incrementally.
    pub fn handle(&self, request: &HttpRequest) -> HttpResponse {
        match self.dispatch(request) {
            Handled::Response(response) => response,
            Handled::Stream(stream) => self.collect_stream(stream),
        }
    }

    /// Writes a [`ConsensusStream`] as a chunked NDJSON response, one chunk
    /// per line as completions land, recording the stream's total latency.
    pub fn stream_ndjson<W: Write>(
        &self,
        stream: ConsensusStream,
        writer: &mut W,
        keep_alive: bool,
    ) -> std::io::Result<()> {
        let started = stream.started;
        let request_id = stream.request_id.clone();
        let trace = Arc::clone(&stream.trace);
        let result = (|| {
            let mut body = ChunkedResponse::ndjson(200)
                .with_header("x-request-id", request_id.clone())
                .begin(writer, keep_alive)?;
            stream.emit_lines(self, &mut |line: &str| body.write_chunk(line.as_bytes()))?;
            body.finish()
        })();
        let elapsed = started.elapsed();
        self.metrics.record("consensus_stream", elapsed);
        self.observe(
            "consensus_stream",
            "POST /v1/consensus".to_string(),
            request_id,
            &trace,
            200,
            elapsed,
        );
        result
    }

    /// Drains a [`ConsensusStream`] into one buffered NDJSON response.
    fn collect_stream(&self, stream: ConsensusStream) -> HttpResponse {
        let started = stream.started;
        let request_id = stream.request_id.clone();
        let trace = Arc::clone(&stream.trace);
        let mut body = String::new();
        match stream.emit_lines::<std::convert::Infallible>(self, &mut |line| {
            body.push_str(line);
            Ok(())
        }) {
            Ok(()) => {}
            Err(never) => match never {},
        }
        let elapsed = started.elapsed();
        self.metrics.record("consensus_stream", elapsed);
        self.observe(
            "consensus_stream",
            "POST /v1/consensus".to_string(),
            request_id.clone(),
            &trace,
            200,
            elapsed,
        );
        HttpResponse {
            status: 200,
            content_type: "application/x-ndjson",
            extra_headers: vec![("x-request-id", request_id)],
            body,
        }
    }

    /// `POST /v1/consensus` — single spec or `{"requests": [...]}` batch,
    /// buffered by default, streamed NDJSON with `"stream": true`. Serve-side
    /// phases (`parse`, `cache_probe`, `submit`, `wait`, `render`) are
    /// recorded into the request context's timeline.
    fn consensus(&self, request: &HttpRequest, ctx: &RequestContext) -> Result<Handled, HttpError> {
        let parse_span = Span::enter(&ctx.trace, "parse");
        let body = parse_body(request.body_utf8()?)?;
        let (specs, single) = match body.get("requests") {
            Some(raw) => {
                let array = raw
                    .as_array()
                    .ok_or_else(|| HttpError::bad("`requests` must be an array"))?;
                if array.is_empty() {
                    return Err(HttpError::bad("`requests` must not be empty"));
                }
                (
                    array
                        .iter()
                        .map(|raw| parse_consensus_spec(raw, Some(&self.datasets)))
                        .collect::<Result<Vec<_>, _>>()?,
                    false,
                )
            }
            None => (
                vec![parse_consensus_spec(&body, Some(&self.datasets))?],
                true,
            ),
        };
        let wait = match body.get("wait") {
            None | Some(Value::Null) => false,
            Some(Value::Bool(flag)) => *flag,
            Some(_) => return Err(HttpError::bad("`wait` must be a boolean")),
        };
        let stream_mode = match body.get("stream") {
            None | Some(Value::Null) => false,
            Some(Value::Bool(flag)) => *flag,
            Some(_) => return Err(HttpError::bad("`stream` must be a boolean")),
        };
        if stream_mode && wait {
            return Err(HttpError::bad(
                "`stream` and `wait` are mutually exclusive: a streamed batch \
                 delivers each result as it completes",
            ));
        }
        drop(parse_span);

        // Probe the response cache per spec: a spec whose every method outcome
        // is cached never reaches the engine.
        let probe_span = Span::enter(&ctx.trace, "cache_probe");
        let mut to_submit: Vec<ConsensusRequest> = Vec::new();
        let mut dispositions = Vec::with_capacity(specs.len());
        for spec in &specs {
            let mut hits = Vec::with_capacity(spec.methods.len());
            let all_cached = !spec.methods.is_empty()
                && spec.methods.iter().all(|method| {
                    match self.cache.get(&spec.cache_key(*method)) {
                        Some(value) => {
                            hits.push(value);
                            true
                        }
                        None => false,
                    }
                });
            if all_cached {
                dispositions.push(Disposition::Cached(hits));
            } else {
                dispositions.push(Disposition::Submitted(to_submit.len()));
                to_submit.push(spec.request());
            }
        }
        drop(probe_span);

        let overload_error = |error: EngineError| {
            let status = match error {
                EngineError::Overloaded { .. } => 429,
                _ => 500,
            };
            HttpError::new(status, error.to_string())
        };

        if stream_mode {
            // Admission happens before the response head is written: an
            // overloaded engine still answers a clean 429, never a truncated
            // stream.
            let batch = if to_submit.is_empty() {
                BatchHandle::new(Vec::new())
            } else {
                let _submit = Span::enter(&ctx.trace, "submit");
                self.engine
                    .submit_batch_streaming(to_submit)
                    .map_err(overload_error)?
            };
            let mut batch_to_spec = Vec::with_capacity(batch.len());
            for (spec_index, disposition) in dispositions.iter().enumerate() {
                if let Disposition::Submitted(_) = disposition {
                    batch_to_spec.push(spec_index);
                }
            }
            // Every streamed job is also registered: a client that loses the
            // connection mid-stream can recover any line it missed from
            // `GET /v1/jobs/{id}` using the `job_id` values it already saw
            // (or re-send the batch, which replays from the response cache).
            for (batch_index, handle) in batch.handles().iter().enumerate() {
                self.register_job(&specs[batch_to_spec[batch_index]], handle.clone(), &ctx.id);
            }
            return Ok(Handled::Stream(ConsensusStream {
                specs,
                dispositions,
                batch,
                batch_to_spec,
                started: Instant::now(),
                request_id: ctx.id.clone(),
                trace: Arc::clone(&ctx.trace),
            }));
        }

        let handles = if to_submit.is_empty() {
            Vec::new()
        } else {
            let _submit = Span::enter(&ctx.trace, "submit");
            self.engine
                .submit_batch_async(to_submit)
                .map_err(overload_error)?
        };

        let mut any_pending = false;
        let mut rendered = Vec::with_capacity(specs.len());
        for (spec, disposition) in specs.iter().zip(dispositions) {
            rendered.push(match disposition {
                Disposition::Cached(values) => cached_response_json(spec.dataset.name(), &values),
                Disposition::Submitted(index) => {
                    let handle = &handles[index];
                    if wait {
                        let response = {
                            let _wait = Span::enter(&ctx.trace, "wait");
                            handle.wait()
                        };
                        // Rendering counts against both the request timeline
                        // and the job's own trace (it is the job's last
                        // phase before the bytes leave).
                        let job_trace = handle.trace();
                        let _render_request = Span::enter(&ctx.trace, "render");
                        let _render_job = Span::enter(&job_trace, "render");
                        self.rendered_response(spec, &response)
                    } else {
                        any_pending = true;
                        self.register_job(spec, handle.clone(), &ctx.id);
                        obj(vec![
                            ("id", s(handle.id().to_string())),
                            ("status", s(handle.status().label())),
                            ("dataset", s(spec.dataset.name())),
                            ("poll", s(format!("/v1/jobs/{}", handle.id()))),
                        ])
                    }
                }
            });
        }

        let status = if any_pending { 202 } else { 200 };
        let body = if single {
            rendered
                .into_iter()
                .next()
                .expect("one spec, one rendering")
        } else {
            obj(vec![("responses", Value::Array(rendered))])
        };
        Ok(Handled::Response(HttpResponse::json(status, render(&body))))
    }

    /// Renders a completed response for `spec`, inserting every successful
    /// method outcome into the response cache.
    fn rendered_response(&self, spec: &ConsensusSpec, response: &ConsensusResponse) -> Value {
        let mut results = Vec::with_capacity(response.results.len());
        for (index, result) in response.results.iter().enumerate() {
            results.push(match result {
                Ok(result) => {
                    let value = method_result_json(result, spec.dataset.db());
                    if let Some(method) = spec.methods.get(index) {
                        self.cache
                            .insert(spec.cache_key(*method), Arc::new(value.clone()));
                    }
                    with_entry(value, "cached", Value::Bool(false))
                }
                Err(error) => obj(vec![("error", s(error.to_string()))]),
            });
        }
        obj(vec![
            ("dataset", s(&response.dataset)),
            ("status", s(JobStatus::Done.label())),
            ("cached", Value::Bool(false)),
            ("results", Value::Array(results)),
            (
                "total_solve_time_ms",
                Value::Float(response.total_solve_time.as_secs_f64() * 1e3),
            ),
        ])
    }

    /// Tracks an async job for `GET /v1/jobs/{id}`, pruning completed entries
    /// once the registry outgrows [`MAX_TRACKED_JOBS`].
    fn register_job(&self, spec: &ConsensusSpec, handle: JobHandle, request_id: &str) {
        let entry = JobEntry {
            dataset: Arc::clone(&spec.dataset),
            cache_keys: spec
                .methods
                .iter()
                .map(|method| spec.cache_key(*method))
                .collect(),
            cached: AtomicBool::new(false),
            request_id: request_id.to_string(),
            handle,
        };
        let mut jobs = self.jobs.lock().expect("job registry lock poisoned");
        jobs.insert(entry.handle.id().as_u64(), entry);
        // Only completed jobs are evictable: a queued/running job's poll URL
        // was just handed to a client and must keep resolving. When every
        // tracked job is still live the registry temporarily exceeds the
        // bound (its size is then already bounded by the engine queue depth).
        while jobs.len() > MAX_TRACKED_JOBS {
            let oldest_done = jobs
                .iter()
                .filter(|(_, e)| e.handle.status() == JobStatus::Done)
                .map(|(id, _)| *id)
                .min();
            match oldest_done {
                Some(id) => jobs.remove(&id),
                None => break,
            };
        }
    }

    /// `GET /v1/jobs/{id}`.
    fn job(&self, raw_id: &str) -> Result<HttpResponse, HttpError> {
        let id: u64 = raw_id
            .strip_prefix("job-")
            .unwrap_or(raw_id)
            .parse()
            .map_err(|_| HttpError::bad(format!("malformed job id `{raw_id}`")))?;
        let (handle, dataset, cache_keys, already_cached, request_id) = {
            let jobs = self.jobs.lock().expect("job registry lock poisoned");
            let entry = jobs
                .get(&id)
                .ok_or_else(|| HttpError::new(404, format!("no such job `job-{id}`")))?;
            (
                entry.handle.clone(),
                Arc::clone(&entry.dataset),
                entry.cache_keys.clone(),
                entry.cached.swap(true, Ordering::AcqRel),
                entry.request_id.clone(),
            )
        };
        let Some(response) = handle.try_poll() else {
            // Not done yet: release the would-be cache claim for a later poll.
            let jobs = self.jobs.lock().expect("job registry lock poisoned");
            if let Some(entry) = jobs.get(&id) {
                entry.cached.store(false, Ordering::Release);
            }
            return Ok(HttpResponse::json(
                200,
                render(&obj(vec![
                    ("id", s(format!("job-{id}"))),
                    ("status", s(handle.status().label())),
                    ("dataset", s(dataset.name())),
                    ("request_id", s(&request_id)),
                ])),
            ));
        };

        let mut results = Vec::with_capacity(response.results.len());
        for (index, result) in response.results.iter().enumerate() {
            results.push(match result {
                Ok(result) => {
                    let value = method_result_json(result, dataset.db());
                    if !already_cached {
                        if let Some(key) = cache_keys.get(index) {
                            self.cache.insert(key.clone(), Arc::new(value.clone()));
                        }
                    }
                    with_entry(value, "cached", Value::Bool(false))
                }
                Err(error) => obj(vec![("error", s(error.to_string()))]),
            });
        }
        Ok(HttpResponse::json(
            200,
            render(&obj(vec![
                ("id", s(format!("job-{id}"))),
                ("status", s(JobStatus::Done.label())),
                ("dataset", s(&response.dataset)),
                ("request_id", s(&request_id)),
                ("results", Value::Array(results)),
                (
                    "total_solve_time_ms",
                    Value::Float(response.total_solve_time.as_secs_f64() * 1e3),
                ),
            ])),
        ))
    }

    /// `GET /v1/jobs/{id}/trace` — the job's phase timeline: queue wait,
    /// cache lookup or matrix build, solve, and render, each phase exactly
    /// once (merged by name), plus the submitting request's id for log
    /// correlation.
    fn job_trace(&self, raw_id: &str) -> Result<HttpResponse, HttpError> {
        let id: u64 = raw_id
            .strip_prefix("job-")
            .unwrap_or(raw_id)
            .parse()
            .map_err(|_| HttpError::bad(format!("malformed job id `{raw_id}`")))?;
        let (handle, dataset, request_id) = {
            let jobs = self.jobs.lock().expect("job registry lock poisoned");
            let entry = jobs
                .get(&id)
                .ok_or_else(|| HttpError::new(404, format!("no such job `job-{id}`")))?;
            (
                entry.handle.clone(),
                Arc::clone(&entry.dataset),
                entry.request_id.clone(),
            )
        };
        let trace = handle.trace();
        let phases = Value::Array(
            trace
                .snapshot()
                .into_iter()
                .map(|phase| {
                    obj(vec![
                        ("name", s(phase.name)),
                        ("start_ms", Value::Float(phase.start_ns as f64 / 1e6)),
                        ("duration_ms", Value::Float(phase.duration_ns as f64 / 1e6)),
                        ("count", Value::UInt(phase.count)),
                    ])
                })
                .collect(),
        );
        Ok(HttpResponse::json(
            200,
            render(&obj(vec![
                ("id", s(format!("job-{id}"))),
                ("request_id", s(&request_id)),
                ("dataset", s(dataset.name())),
                ("status", s(handle.status().label())),
                ("span_ms", Value::Float(trace.span_ns() as f64 / 1e6)),
                ("age_ms", Value::Float(trace.age().as_secs_f64() * 1e3)),
                ("phases", phases),
            ])),
        ))
    }

    /// `POST /v1/audit` — per-group FPR audit of a dataset: the Fair-Copeland
    /// consensus under `delta`, the unconstrained Copeland consensus, and
    /// optionally every base ranking. Runs inline on the connection thread
    /// (audits are `O(n²)`; they do not occupy the consensus queue).
    fn audit(&self, request: &HttpRequest) -> Result<HttpResponse, HttpError> {
        let body = parse_body(request.body_utf8()?)?;
        let dataset = resolve_spec_dataset(&body, Some(&self.datasets))?;
        let delta = match body.get("delta") {
            None | Some(Value::Null) => 0.1,
            Some(raw) => crate::json::as_f64(raw, "`delta`")?,
        };
        let per_ranking = matches!(body.get("per_ranking"), Some(Value::Bool(true)));

        let groups = GroupIndex::new(dataset.db());
        let ctx = MfcrContext::new(
            dataset.db(),
            &groups,
            dataset.profile(),
            FairnessThresholds::uniform(delta),
        );
        let outcome = MethodKind::FairCopeland
            .instantiate()
            .solve(&ctx)
            .map_err(|e| HttpError::new(500, e.to_string()))?;
        let fair = FairnessAudit::new("Fair-Copeland", &outcome.ranking, dataset.db(), &groups);
        let unconstrained = CopelandAggregator::new().consensus(dataset.profile());
        let unfair = FairnessAudit::new(
            "Copeland (unconstrained)",
            &unconstrained,
            dataset.db(),
            &groups,
        );

        let mut entries = vec![
            ("dataset", s(dataset.name())),
            ("delta", Value::Float(delta)),
            ("consensus", fair.serialize_value()),
            ("unconstrained", unfair.serialize_value()),
        ];
        let base_audits;
        if per_ranking {
            base_audits = Value::Array(
                dataset
                    .profile()
                    .rankings()
                    .iter()
                    .enumerate()
                    .map(|(index, ranking)| {
                        FairnessAudit::new(
                            format!("ranking-{index}"),
                            ranking,
                            dataset.db(),
                            &groups,
                        )
                        .serialize_value()
                    })
                    .collect(),
            );
            entries.push(("rankings", base_audits));
        }
        Ok(HttpResponse::json(200, render(&obj(entries))))
    }

    /// `POST /v1/datasets` — register a dataset for later `dataset_id`
    /// solves. The body is either a bare dataset object or `{"dataset":
    /// {...}}`. Ids are content fingerprints (the precedence-cache key), so
    /// registration is idempotent and registered datasets share the engine's
    /// warm matrix with identical inline uploads.
    fn dataset_create(&self, request: &HttpRequest) -> Result<HttpResponse, HttpError> {
        let body = parse_body(request.body_utf8()?)?;
        let dataset = match body.get("dataset") {
            Some(wrapped) => parse_dataset(wrapped)?,
            None => parse_dataset(&body)?,
        };
        let (id, created) = self.datasets.register(Arc::clone(&dataset))?;
        Ok(HttpResponse::json(
            200,
            render(&obj(vec![
                ("id", s(&id)),
                ("name", s(dataset.name())),
                ("candidates", Value::UInt(dataset.num_candidates() as u64)),
                ("rankings", Value::UInt(dataset.num_rankings() as u64)),
                ("created", Value::Bool(created)),
            ])),
        ))
    }

    /// `GET /v1/datasets/{id}` — metadata of a registered dataset.
    fn dataset_get(&self, id: &str) -> Result<HttpResponse, HttpError> {
        let dataset = self.datasets.resolve(id)?;
        Ok(HttpResponse::json(
            200,
            render(&obj(vec![
                ("id", s(dataset_id(&dataset))),
                ("name", s(dataset.name())),
                ("candidates", Value::UInt(dataset.num_candidates() as u64)),
                ("rankings", Value::UInt(dataset.num_rankings() as u64)),
                ("attributes", attribute_names_json(dataset.db())),
            ])),
        ))
    }

    /// `DELETE /v1/datasets/{id}`.
    fn dataset_delete(&self, id: &str) -> Result<HttpResponse, HttpError> {
        match self.datasets.remove(id) {
            Some(_) => Ok(HttpResponse::json(
                200,
                render(&obj(vec![("id", s(id)), ("deleted", Value::Bool(true))])),
            )),
            None => Err(HttpError::new(404, format!("no such dataset `{id}`"))),
        }
    }

    /// `GET /v1/stats`.
    fn stats_response(&self) -> HttpResponse {
        let engine = self.engine.stats();
        let precedence = self.engine.cache().stats();
        let responses = self.cache.stats();
        let jobs_tracked = self.jobs.lock().expect("job registry lock poisoned").len();
        let connections = self.connections.snapshot();
        let latency = Value::Object(
            self.metrics
                .snapshots()
                .into_iter()
                .map(|(label, snap)| {
                    (
                        label.to_string(),
                        obj(vec![
                            ("count", Value::UInt(snap.count)),
                            ("total_ms", Value::Float(snap.total_ns as f64 / 1e6)),
                            (
                                "le_us",
                                Value::Array(
                                    LATENCY_BUCKET_BOUNDS_US
                                        .iter()
                                        .map(|b| Value::UInt(*b))
                                        .collect(),
                                ),
                            ),
                            (
                                "buckets",
                                Value::Array(
                                    snap.buckets.iter().map(|c| Value::UInt(*c)).collect(),
                                ),
                            ),
                        ]),
                    )
                })
                .collect(),
        );
        let body = obj(vec![
            (
                "engine",
                obj(vec![
                    ("threads", Value::UInt(self.engine.threads() as u64)),
                    (
                        "kernel_threads",
                        Value::UInt(self.engine.kernel_parallelism().max_threads() as u64),
                    ),
                    (
                        "kernel_tile_size",
                        Value::UInt(self.engine.kernel_parallelism().tile_size() as u64),
                    ),
                    ("queue_depth", Value::UInt(engine.queue_depth as u64)),
                    ("in_flight", Value::UInt(engine.in_flight as u64)),
                    ("submitted", Value::UInt(engine.submitted)),
                    ("completed", Value::UInt(engine.completed)),
                    ("rejected", Value::UInt(engine.rejected)),
                ]),
            ),
            (
                "kernels",
                obj(vec![
                    ("matrix_build_ns", Value::UInt(engine.matrix_build_ns)),
                    ("solve_ns", Value::UInt(engine.solve_ns)),
                    ("nodes_expanded", Value::UInt(engine.nodes_expanded)),
                    ("fw_blocked_solves", Value::UInt(engine.fw_blocked_solves)),
                    ("fw_tiles_relaxed", Value::UInt(engine.fw_tiles_relaxed)),
                    ("pair_shard_tasks", Value::UInt(engine.pair_shard_tasks)),
                    (
                        "ranking_shard_tasks",
                        Value::UInt(engine.ranking_shard_tasks),
                    ),
                ]),
            ),
            (
                "streaming",
                obj(vec![
                    ("batches_opened", Value::UInt(engine.batches_opened)),
                    ("batches_drained", Value::UInt(engine.batches_drained)),
                    ("results_yielded", Value::UInt(engine.batch_results_yielded)),
                ]),
            ),
            (
                "precedence_cache",
                obj(vec![
                    ("lookups", Value::UInt(precedence.lookups)),
                    ("hits", Value::UInt(precedence.hits)),
                    ("builds", Value::UInt(precedence.builds)),
                    ("entries", Value::UInt(precedence.entries as u64)),
                ]),
            ),
            (
                "response_cache",
                obj(vec![
                    ("capacity", Value::UInt(responses.capacity as u64)),
                    ("entries", Value::UInt(responses.entries as u64)),
                    ("hits", Value::UInt(responses.hits)),
                    ("misses", Value::UInt(responses.misses)),
                    ("insertions", Value::UInt(responses.insertions)),
                    ("evictions", Value::UInt(responses.evictions)),
                ]),
            ),
            (
                "server",
                obj(vec![
                    ("max_connections", Value::UInt(connections.max_connections)),
                    ("conn_threads", Value::UInt(connections.conn_threads)),
                    ("connections_accepted", Value::UInt(connections.accepted)),
                    (
                        "connections_rejected",
                        Value::UInt(connections.rejected_busy),
                    ),
                    ("requests_served", Value::UInt(connections.requests)),
                    (
                        "keepalive_reuses",
                        Value::UInt(connections.keepalive_reuses),
                    ),
                ]),
            ),
            ("latency", latency),
            (
                "datasets_registered",
                Value::UInt(self.datasets.len() as u64),
            ),
            ("jobs_tracked", Value::UInt(jobs_tracked as u64)),
            (
                "slow_requests",
                Value::Array(
                    self.slow
                        .snapshot()
                        .into_iter()
                        .map(|entry| {
                            obj(vec![
                                ("request_id", s(&entry.request_id)),
                                ("endpoint", s(entry.endpoint)),
                                ("target", s(&entry.target)),
                                ("status", Value::UInt(u64::from(entry.status))),
                                ("duration_ms", Value::Float(entry.duration_ns as f64 / 1e6)),
                                (
                                    "phases",
                                    Value::Object(
                                        entry
                                            .phases
                                            .iter()
                                            .map(|(name, ns)| {
                                                (name.to_string(), Value::Float(*ns as f64 / 1e6))
                                            })
                                            .collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "uptime_seconds",
                Value::Float(self.started.elapsed().as_secs_f64()),
            ),
        ]);
        HttpResponse::json(200, render(&body))
    }

    /// `GET /metrics` — the whole counter surface in Prometheus text
    /// exposition 0.0.4: per-endpoint request counts and latency histograms,
    /// engine queue/job/kernel counters, worker-pool saturation, both cache
    /// layers, and the connection pool.
    fn metrics_response(&self) -> HttpResponse {
        let engine = self.engine.stats();
        let precedence = self.engine.cache().stats();
        let responses = self.cache.stats();
        let connections = self.connections.snapshot();
        let jobs_tracked = self.jobs.lock().expect("job registry lock poisoned").len();
        let snapshots = self.metrics.snapshots();

        let mut w = PromWriter::new();
        w.family("mani_build_info", "gauge", "Build identity (constant 1).");
        w.sample(
            "mani_build_info",
            &[("version", env!("CARGO_PKG_VERSION"))],
            1.0,
        );
        w.gauge(
            "mani_uptime_seconds",
            "Seconds since this server state was created.",
            self.started.elapsed().as_secs_f64(),
        );

        w.family(
            "mani_http_requests_total",
            "counter",
            "HTTP requests dispatched, by endpoint label.",
        );
        for (label, snap) in &snapshots {
            w.sample(
                "mani_http_requests_total",
                &[("endpoint", *label)],
                snap.count as f64,
            );
        }
        w.family(
            "mani_http_request_duration_seconds",
            "histogram",
            "HTTP request latency, by endpoint label.",
        );
        let bounds: Vec<f64> = LATENCY_BUCKET_BOUNDS_US
            .iter()
            .map(|us| *us as f64 / 1e6)
            .collect();
        for (label, snap) in &snapshots {
            w.histogram(
                "mani_http_request_duration_seconds",
                &[("endpoint", *label)],
                &bounds,
                &snap.buckets,
                snap.total_ns as f64 / 1e9,
            );
        }

        w.counter(
            "mani_connections_accepted_total",
            "Connections handed to the worker pool.",
            connections.accepted,
        );
        w.counter(
            "mani_connections_rejected_total",
            "Connections answered 503 at the accept path.",
            connections.rejected_busy,
        );
        w.counter(
            "mani_requests_served_total",
            "HTTP exchanges served across all connections.",
            connections.requests,
        );
        w.counter(
            "mani_keepalive_reuses_total",
            "Exchanges served on an already-used keep-alive connection.",
            connections.keepalive_reuses,
        );
        w.gauge(
            "mani_connections_max",
            "Configured concurrent-connection bound.",
            connections.max_connections as f64,
        );
        w.gauge(
            "mani_connection_threads",
            "Configured connection worker threads.",
            connections.conn_threads as f64,
        );

        w.gauge(
            "mani_engine_queue_depth",
            "Configured engine job-queue bound.",
            engine.queue_depth as f64,
        );
        w.gauge(
            "mani_engine_jobs_in_flight",
            "Jobs admitted and not yet completed.",
            engine.in_flight as f64,
        );
        w.counter(
            "mani_engine_jobs_submitted_total",
            "Jobs admitted to the engine queue.",
            engine.submitted,
        );
        w.counter(
            "mani_engine_jobs_completed_total",
            "Jobs that finished solving.",
            engine.completed,
        );
        w.counter(
            "mani_engine_jobs_rejected_total",
            "Jobs refused because the queue was full.",
            engine.rejected,
        );
        w.family(
            "mani_engine_matrix_build_seconds_total",
            "counter",
            "Cumulative time spent building precedence matrices.",
        );
        w.sample(
            "mani_engine_matrix_build_seconds_total",
            &[],
            engine.matrix_build_ns as f64 / 1e9,
        );
        w.family(
            "mani_engine_solve_seconds_total",
            "counter",
            "Cumulative time spent inside method solvers.",
        );
        w.sample(
            "mani_engine_solve_seconds_total",
            &[],
            engine.solve_ns as f64 / 1e9,
        );
        w.counter(
            "mani_engine_nodes_expanded_total",
            "Exact-solver search nodes expanded.",
            engine.nodes_expanded,
        );
        w.counter(
            "mani_kernel_fw_blocked_solves_total",
            "Blocked (tiled) Floyd-Warshall solves, process-wide.",
            engine.fw_blocked_solves,
        );
        w.counter(
            "mani_kernel_fw_tiles_relaxed_total",
            "Tiles relaxed by blocked Floyd-Warshall solves, process-wide.",
            engine.fw_tiles_relaxed,
        );
        w.counter(
            "mani_kernel_pair_shard_tasks_total",
            "Candidate-pair shard tasks spawned by matrix/scoring kernels, process-wide.",
            engine.pair_shard_tasks,
        );
        w.counter(
            "mani_kernel_ranking_shard_tasks_total",
            "Ranking shard tasks spawned by matrix build kernels, process-wide.",
            engine.ranking_shard_tasks,
        );
        w.counter(
            "mani_engine_batches_opened_total",
            "Streaming batches opened.",
            engine.batches_opened,
        );
        w.counter(
            "mani_engine_batches_drained_total",
            "Streaming batches fully drained.",
            engine.batches_drained,
        );
        w.counter(
            "mani_engine_batch_results_yielded_total",
            "Streaming results yielded in as-completed order.",
            engine.batch_results_yielded,
        );
        w.gauge(
            "mani_pool_queued",
            "Engine worker-pool jobs waiting for a thread.",
            engine.pool_queued as f64,
        );
        w.gauge(
            "mani_pool_busy",
            "Engine worker-pool threads currently running a job.",
            engine.pool_busy as f64,
        );
        w.counter(
            "mani_pool_tasks_executed_total",
            "Engine worker-pool jobs executed to completion.",
            engine.pool_tasks_executed,
        );

        w.counter(
            "mani_precedence_cache_lookups_total",
            "Precedence-cache lookups.",
            precedence.lookups,
        );
        w.counter(
            "mani_precedence_cache_hits_total",
            "Precedence-cache hits (matrix reused).",
            precedence.hits,
        );
        w.counter(
            "mani_precedence_cache_builds_total",
            "Precedence matrices built.",
            precedence.builds,
        );
        w.gauge(
            "mani_precedence_cache_entries",
            "Precedence-cache resident entries.",
            precedence.entries as f64,
        );

        w.gauge(
            "mani_response_cache_capacity",
            "Response-cache entry bound.",
            responses.capacity as f64,
        );
        w.gauge(
            "mani_response_cache_entries",
            "Response-cache resident entries.",
            responses.entries as f64,
        );
        w.counter(
            "mani_response_cache_hits_total",
            "Response-cache hits.",
            responses.hits,
        );
        w.counter(
            "mani_response_cache_misses_total",
            "Response-cache misses.",
            responses.misses,
        );
        w.counter(
            "mani_response_cache_insertions_total",
            "Response-cache insertions.",
            responses.insertions,
        );
        w.counter(
            "mani_response_cache_evictions_total",
            "Response-cache LRU evictions.",
            responses.evictions,
        );

        w.gauge(
            "mani_datasets_registered",
            "Datasets resident in the registry.",
            self.datasets.len() as f64,
        );
        w.gauge(
            "mani_jobs_tracked",
            "Async jobs tracked for polling.",
            jobs_tracked as f64,
        );

        HttpResponse {
            status: 200,
            content_type: "text/plain; version=0.0.4; charset=utf-8",
            extra_headers: Vec::new(),
            body: w.finish(),
        }
    }
}

/// `GET /v1/version` — build identity: crate version, git description when
/// baked in at build time (`MANI_GIT_DESCRIBE`), compile profile, and the
/// feature surface.
fn version_response() -> HttpResponse {
    let git = match option_env!("MANI_GIT_DESCRIBE") {
        Some(describe) => s(describe),
        None => Value::Null,
    };
    HttpResponse::json(
        200,
        render(&obj(vec![
            ("name", s("mani-serve")),
            ("version", s(env!("CARGO_PKG_VERSION"))),
            ("git", git),
            (
                "profile",
                s(if cfg!(debug_assertions) {
                    "debug"
                } else {
                    "release"
                }),
            ),
            (
                "features",
                Value::Array(
                    [
                        "std-only",
                        "streaming-ndjson",
                        "prometheus-metrics",
                        "request-tracing",
                    ]
                    .into_iter()
                    .map(s)
                    .collect(),
                ),
            ),
        ])),
    )
}

/// `GET /v1/methods`.
fn methods_response() -> HttpResponse {
    let methods = Value::Array(
        MethodKind::all()
            .iter()
            .map(|kind| {
                obj(vec![
                    ("name", s(kind.name())),
                    ("paper_label", s(kind.paper_label())),
                    ("proposed", Value::Bool(kind.is_proposed())),
                ])
            })
            .collect(),
    );
    HttpResponse::json(200, render(&obj(vec![("methods", methods)])))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_support::{delete, demo_consensus_body, demo_dataset_json, get, post};

    fn state() -> AppState {
        AppState::new(
            EngineConfig {
                threads: 2,
                ..EngineConfig::default()
            },
            16,
        )
    }

    #[test]
    fn consensus_wait_and_cache_replay() {
        let state = state();
        let first = state.handle(&post("/v1/consensus", &demo_consensus_body(0.2, true)));
        assert_eq!(first.status, 200, "{}", first.body);
        assert!(first.body.contains("\"cached\":false"));
        assert!(first.body.contains("\"ranking\""));
        let builds_after_first = state.engine().cache().stats().builds;
        assert_eq!(builds_after_first, 1);

        let second = state.handle(&post("/v1/consensus", &demo_consensus_body(0.2, true)));
        assert_eq!(second.status, 200);
        assert!(second.body.contains("\"cached\":true"), "{}", second.body);
        assert_eq!(
            state.engine().cache().stats().builds,
            builds_after_first,
            "replay must not build another precedence matrix"
        );
        assert_eq!(
            state.engine().stats().submitted,
            1,
            "replay must not reach the engine queue"
        );
    }

    #[test]
    fn async_job_lifecycle_via_poll() {
        let state = state();
        let accepted = state.handle(&post("/v1/consensus", &demo_consensus_body(0.25, false)));
        assert_eq!(accepted.status, 202, "{}", accepted.body);
        assert!(accepted.body.contains("\"poll\":\"/v1/jobs/job-1\""));

        // Poll until done (tiny dataset: effectively immediate).
        let deadline = Instant::now() + std::time::Duration::from_secs(10);
        loop {
            let polled = state.handle(&get("/v1/jobs/job-1"));
            assert_eq!(polled.status, 200, "{}", polled.body);
            if polled.body.contains("\"status\":\"done\"") {
                assert!(polled.body.contains("\"ranking\""));
                break;
            }
            assert!(Instant::now() < deadline, "job never completed");
            std::thread::yield_now();
        }
        // Completion populated the response cache: replay is served cached.
        let replay = state.handle(&post("/v1/consensus", &demo_consensus_body(0.25, true)));
        assert_eq!(replay.status, 200);
        assert!(replay.body.contains("\"cached\":true"), "{}", replay.body);
    }

    #[test]
    fn stream_mode_emits_ndjson_lines_and_summary() {
        let state = state();
        let body = format!(
            r#"{{"requests": [{}, {}], "stream": true}}"#,
            crate::test_support::demo_dataset_consensus_spec("one", 0.2),
            crate::test_support::demo_dataset_consensus_spec("two", 0.3),
        );
        let response = state.handle(&post("/v1/consensus", &body));
        assert_eq!(response.status, 200, "{}", response.body);
        assert_eq!(response.content_type, "application/x-ndjson");
        let lines: Vec<&str> = response.body.lines().collect();
        assert_eq!(
            lines.len(),
            3,
            "two result lines + summary: {}",
            response.body
        );
        for line in &lines[..2] {
            let parsed = parse_body(line).unwrap();
            assert!(parsed.get("index").is_some(), "{line}");
            assert!(
                matches!(parsed.get("job_id"), Some(Value::String(_))),
                "solved lines carry a job id: {line}"
            );
            assert!(
                parsed.get("ranking").is_none(),
                "results nest under results"
            );
            assert!(parsed.get("results").is_some(), "{line}");
        }
        let summary = parse_body(lines[2]).unwrap();
        assert_eq!(summary.get("summary"), Some(&Value::Bool(true)));
        assert_eq!(summary.get("requests"), Some(&Value::UInt(2)));
        assert_eq!(summary.get("completed"), Some(&Value::UInt(2)));
        assert_eq!(summary.get("errors"), Some(&Value::UInt(0)));

        // Streamed results populated the response cache: the same batch
        // replayed non-streaming comes back cached, and a streamed replay
        // marks its lines cached with a null job id.
        let replayed = state.handle(&post("/v1/consensus", &body));
        assert_eq!(replayed.status, 200);
        let first = parse_body(replayed.body.lines().next().unwrap()).unwrap();
        assert_eq!(first.get("cached"), Some(&Value::Bool(true)));
        assert_eq!(first.get("job_id"), Some(&Value::Null));
        assert_eq!(
            state.engine().stats().submitted,
            2,
            "the replay must not resubmit jobs"
        );
        // Streaming batch counters surface in /v1/stats.
        let stats = state.handle(&get("/v1/stats"));
        assert!(stats.body.contains("\"streaming\""), "{}", stats.body);
        assert!(
            stats.body.contains("\"batches_opened\":1"),
            "{}",
            stats.body
        );
    }

    #[test]
    fn stream_and_wait_are_mutually_exclusive() {
        let state = state();
        let body = format!(
            r#"{{"requests": [{}], "stream": true, "wait": true}}"#,
            crate::test_support::demo_dataset_consensus_spec("x", 0.2),
        );
        let response = state.handle(&post("/v1/consensus", &body));
        assert_eq!(response.status, 400, "{}", response.body);
        assert!(response.body.contains("mutually exclusive"));
    }

    #[test]
    fn unknown_job_and_bad_ids_are_client_errors() {
        let state = state();
        assert_eq!(state.handle(&get("/v1/jobs/job-99")).status, 404);
        assert_eq!(state.handle(&get("/v1/jobs/banana")).status, 400);
    }

    #[test]
    fn methods_and_stats_render() {
        let state = state();
        let methods = state.handle(&get("/v1/methods"));
        assert_eq!(methods.status, 200);
        assert!(methods.body.contains("Fair-Borda"));
        assert!(methods.body.contains("(B1) Kemeny"));
        let stats = state.handle(&get("/v1/stats"));
        assert_eq!(stats.status, 200, "{}", stats.body);
        assert!(stats.body.contains("\"precedence_cache\""));
        assert!(stats.body.contains("\"response_cache\""));
        assert!(stats.body.contains("\"queue_depth\""));
        assert!(stats.body.contains("\"kernels\""));
        assert!(stats.body.contains("\"matrix_build_ns\""));
        assert!(stats.body.contains("\"nodes_expanded\""));
        assert!(stats.body.contains("\"kernel_threads\""));
        assert!(stats.body.contains("\"kernel_tile_size\""));
        assert!(stats.body.contains("\"fw_blocked_solves\""));
        assert!(stats.body.contains("\"fw_tiles_relaxed\""));
        assert!(stats.body.contains("\"pair_shard_tasks\""));
        assert!(stats.body.contains("\"ranking_shard_tasks\""));
    }

    #[test]
    fn dataset_endpoints_round_trip() {
        let state = state();
        let up = state.handle(&post("/v1/datasets", &demo_dataset_json("reg")));
        assert_eq!(up.status, 200, "{}", up.body);
        let parsed = parse_body(&up.body).unwrap();
        let id = parsed
            .get("id")
            .and_then(Value::as_str)
            .expect("dataset id")
            .to_string();
        assert!(id.starts_with("ds-"), "{id}");
        assert!(up.body.contains("\"created\":true"));

        // Re-uploading identical content (wrapped form) is idempotent.
        let wrapped = format!(r#"{{"dataset": {}}}"#, demo_dataset_json("other-name"));
        let again = state.handle(&post("/v1/datasets", &wrapped));
        assert_eq!(again.status, 200);
        assert!(again.body.contains(&id), "{}", again.body);
        assert!(again.body.contains("\"created\":false"));

        let meta = state.handle(&get(&format!("/v1/datasets/{id}")));
        assert_eq!(meta.status, 200, "{}", meta.body);
        assert!(meta.body.contains("\"candidates\":4"));
        assert!(meta.body.contains("\"attributes\":[\"G\"]"));

        // Solve by reference instead of re-posting the rows.
        let by_id = format!(
            r#"{{"dataset_id": "{id}", "methods": ["Fair-Borda"], "delta": 0.2, "wait": true}}"#
        );
        let solved = state.handle(&post("/v1/consensus", &by_id));
        assert_eq!(solved.status, 200, "{}", solved.body);
        assert!(solved.body.contains("\"ranking\""));

        let gone = state.handle(&delete(&format!("/v1/datasets/{id}")));
        assert_eq!(gone.status, 200);
        assert!(gone.body.contains("\"deleted\":true"));
        assert_eq!(
            state.handle(&get(&format!("/v1/datasets/{id}"))).status,
            404
        );
        assert_eq!(
            state.handle(&delete(&format!("/v1/datasets/{id}"))).status,
            404
        );
        assert_eq!(state.handle(&post("/v1/consensus", &by_id)).status, 404);
    }

    #[test]
    fn stats_report_latency_histograms_and_server_counters() {
        let state = state();
        state.handle(&get("/v1/methods"));
        let first = state.handle(&post("/v1/consensus", &demo_consensus_body(0.2, true)));
        assert_eq!(first.status, 200);
        let stats = state.handle(&get("/v1/stats"));
        assert_eq!(stats.status, 200, "{}", stats.body);
        let parsed = parse_body(&stats.body).unwrap();
        let latency = parsed.get("latency").expect("latency section");
        let count = |endpoint: &str| match latency.get(endpoint).and_then(|h| h.get("count")) {
            Some(Value::UInt(u)) => *u,
            other => panic!("missing count for {endpoint}: {other:?}"),
        };
        assert_eq!(count("consensus"), 1);
        assert_eq!(count("methods"), 1);
        assert_eq!(count("stats"), 0, "recorded after the response renders");
        let buckets = latency
            .get("consensus")
            .and_then(|h| h.get("buckets"))
            .and_then(Value::as_array)
            .expect("bucket array");
        let total: u64 = buckets
            .iter()
            .map(|b| match b {
                Value::UInt(u) => *u,
                other => panic!("non-integer bucket {other:?}"),
            })
            .sum();
        assert_eq!(total, 1, "bucket counts must sum to the sample count");
        assert!(stats.body.contains("\"server\""));
        assert!(stats.body.contains("\"datasets_registered\":0"));
    }

    fn header_of<'a>(response: &'a HttpResponse, name: &str) -> Option<&'a str> {
        response
            .extra_headers
            .iter()
            .find(|(n, _)| n.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }

    #[test]
    fn request_ids_echo_and_generate() {
        let state = state();
        // A well-formed incoming id is echoed back verbatim.
        let mut request = get("/v1/methods");
        request
            .headers
            .push(("x-request-id".to_string(), "client-abc.1".to_string()));
        let response = state.handle(&request);
        assert_eq!(header_of(&response, "x-request-id"), Some("client-abc.1"));

        // Missing id: one is generated — also on error responses.
        let err = state.handle(&get("/nope"));
        assert_eq!(err.status, 404);
        let generated = header_of(&err, "x-request-id").expect("id on 404");
        assert!(generated.starts_with("req-"), "{generated}");

        // Malformed (spaces) id is replaced, not echoed.
        let mut bad = get("/v1/methods");
        bad.headers
            .push(("x-request-id".to_string(), "has spaces".to_string()));
        let replaced = state.handle(&bad);
        let id = header_of(&replaced, "x-request-id").expect("replacement id");
        assert!(id.starts_with("req-"), "{id}");
    }

    #[test]
    fn version_and_metrics_endpoints_render() {
        let state = state();
        let version = state.handle(&get("/v1/version"));
        assert_eq!(version.status, 200, "{}", version.body);
        assert!(version.body.contains("\"version\""), "{}", version.body);
        assert!(version.body.contains("\"profile\""), "{}", version.body);
        assert!(version.body.contains("\"features\""), "{}", version.body);

        let solved = state.handle(&post("/v1/consensus", &demo_consensus_body(0.2, true)));
        assert_eq!(solved.status, 200);
        let metrics = state.handle(&get("/metrics"));
        assert_eq!(metrics.status, 200);
        assert!(metrics.content_type.starts_with("text/plain"));
        assert!(
            metrics
                .body
                .contains("# TYPE mani_http_request_duration_seconds histogram"),
            "{}",
            metrics.body
        );
        assert!(
            metrics
                .body
                .contains("mani_http_requests_total{endpoint=\"consensus\"} 1"),
            "{}",
            metrics.body
        );
        assert!(
            metrics.body.contains("mani_engine_jobs_submitted_total 1"),
            "{}",
            metrics.body
        );
        assert!(metrics.body.contains("le=\"+Inf\""), "{}", metrics.body);
        assert!(metrics.body.contains("mani_uptime_seconds"));
        assert!(metrics.body.contains("mani_pool_tasks_executed_total"));
        assert!(metrics.body.contains("mani_kernel_fw_blocked_solves_total"));
        assert!(metrics.body.contains("mani_kernel_fw_tiles_relaxed_total"));
        assert!(metrics.body.contains("mani_kernel_pair_shard_tasks_total"));
        assert!(metrics
            .body
            .contains("mani_kernel_ranking_shard_tasks_total"));
        assert!(metrics
            .body
            .contains("mani_precedence_cache_builds_total 1"));
    }

    #[test]
    fn job_trace_reports_each_phase_once_within_wall_time() {
        let state = state();
        let accepted = state.handle(&post("/v1/consensus", &demo_consensus_body(0.25, false)));
        assert_eq!(accepted.status, 202, "{}", accepted.body);
        let deadline = Instant::now() + std::time::Duration::from_secs(10);
        loop {
            let polled = state.handle(&get("/v1/jobs/job-1"));
            if polled.body.contains("\"status\":\"done\"") {
                break;
            }
            assert!(Instant::now() < deadline, "job never completed");
            std::thread::yield_now();
        }
        let trace = state.handle(&get("/v1/jobs/job-1/trace"));
        assert_eq!(trace.status, 200, "{}", trace.body);
        let parsed = parse_body(&trace.body).unwrap();
        assert!(
            matches!(parsed.get("request_id"), Some(Value::String(_))),
            "{}",
            trace.body
        );
        let as_f64 = |value: &Value| match value {
            Value::Float(f) => *f,
            Value::UInt(u) => *u as f64,
            Value::Int(i) => *i as f64,
            other => panic!("not a number: {other:?}"),
        };
        let age_ms = as_f64(parsed.get("age_ms").expect("age_ms"));
        let span_ms = as_f64(parsed.get("span_ms").expect("span_ms"));
        assert!(span_ms <= age_ms, "span {span_ms} > age {age_ms}");
        let phases = parsed
            .get("phases")
            .and_then(Value::as_array)
            .expect("phases");
        let mut names = Vec::new();
        let mut total_ms = 0.0;
        for phase in phases {
            names.push(
                phase
                    .get("name")
                    .and_then(Value::as_str)
                    .expect("phase name")
                    .to_string(),
            );
            total_ms += as_f64(phase.get("duration_ms").expect("duration"));
        }
        for expected in ["queue_wait", "solve"] {
            assert_eq!(
                names.iter().filter(|n| *n == expected).count(),
                1,
                "{names:?}"
            );
        }
        let unique: std::collections::HashSet<&String> = names.iter().collect();
        assert_eq!(unique.len(), names.len(), "each phase once: {names:?}");
        assert!(
            total_ms <= age_ms,
            "sequential phases exceed wall: {total_ms} > {age_ms}"
        );

        // Unknown and malformed ids behave like the job endpoint.
        assert_eq!(state.handle(&get("/v1/jobs/job-99/trace")).status, 404);
        assert_eq!(state.handle(&get("/v1/jobs/banana/trace")).status, 400);
    }

    #[test]
    fn stats_expose_slow_requests_with_phases() {
        let state = state();
        let solved = state.handle(&post("/v1/consensus", &demo_consensus_body(0.2, true)));
        assert_eq!(solved.status, 200);
        let stats = state.handle(&get("/v1/stats"));
        let parsed = parse_body(&stats.body).unwrap();
        let slow = parsed
            .get("slow_requests")
            .and_then(Value::as_array)
            .expect("slow_requests");
        assert!(!slow.is_empty(), "{}", stats.body);
        let consensus_entry = slow
            .iter()
            .find(|e| e.get("endpoint").and_then(Value::as_str) == Some("consensus"))
            .expect("consensus slow entry");
        assert_eq!(
            consensus_entry.get("target").and_then(Value::as_str),
            Some("POST /v1/consensus")
        );
        let phases = consensus_entry.get("phases").expect("phases");
        assert!(phases.get("parse").is_some(), "{}", stats.body);
        assert!(phases.get("wait").is_some(), "{}", stats.body);
        assert!(stats.body.contains("\"uptime_seconds\""), "{}", stats.body);
    }

    #[test]
    fn router_misses_map_to_http_statuses() {
        let state = state();
        assert_eq!(state.handle(&get("/nope")).status, 404);
        assert_eq!(state.handle(&get("/v1/consensus")).status, 405);
        let bad = state.handle(&post("/v1/consensus", "{not json"));
        assert_eq!(bad.status, 400);
        assert!(bad.body.contains("error"));
    }

    #[test]
    fn audit_reports_groups() {
        let state = state();
        let body = r#"{
            "dataset": {
                "name": "aud",
                "candidates": [
                    {"name": "a", "attributes": {"G": "x"}},
                    {"name": "b", "attributes": {"G": "y"}},
                    {"name": "c", "attributes": {"G": "x"}},
                    {"name": "d", "attributes": {"G": "y"}}
                ],
                "rankings": [["a","b","c","d"], ["b","a","d","c"]]
            },
            "per_ranking": true
        }"#;
        let response = state.handle(&post("/v1/audit", body));
        assert_eq!(response.status, 200, "{}", response.body);
        assert!(response.body.contains("\"consensus\""));
        assert!(response.body.contains("\"unconstrained\""));
        assert!(response.body.contains("ranking-1"));
    }
}
