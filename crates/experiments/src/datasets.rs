//! Table I — the Mallows datasets with Low-/Medium-/High-Fair modal rankings.

use mani_datagen::{
    compact_population, gender_race_population, FairnessTarget, MallowsModel, ModalRankingBuilder,
};
use mani_fairness::ParityScores;
use mani_ranking::{CandidateDb, GroupIndex, Ranking, RankingProfile};

use crate::config::Scale;
use crate::table::{fmt3, TextTable};

/// Fairness level of a Table I dataset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FairnessLevel {
    /// ARP targets 0.7 / 0.7, IRP 1.0.
    LowFair,
    /// ARP targets 0.5 / 0.5, IRP 0.75.
    MediumFair,
    /// ARP targets 0.3 / 0.3, IRP 0.54.
    HighFair,
}

impl FairnessLevel {
    /// All three levels in the paper's order.
    pub fn all() -> [FairnessLevel; 3] {
        [
            FairnessLevel::LowFair,
            FairnessLevel::MediumFair,
            FairnessLevel::HighFair,
        ]
    }

    /// Display name matching the paper.
    pub fn name(&self) -> &'static str {
        match self {
            FairnessLevel::LowFair => "Low-Fair",
            FairnessLevel::MediumFair => "Medium-Fair",
            FairnessLevel::HighFair => "High-Fair",
        }
    }

    /// The fairness target associated with this level (for two protected attributes).
    pub fn target(&self) -> FairnessTarget {
        match self {
            FairnessLevel::LowFair => FairnessTarget::low_fair(2),
            FairnessLevel::MediumFair => FairnessTarget::medium_fair(2),
            FairnessLevel::HighFair => FairnessTarget::high_fair(2),
        }
    }
}

/// One Mallows workload: a population, a modal ranking at a fairness level, and the
/// machinery to sample base-ranking profiles at any θ.
#[derive(Debug, Clone)]
pub struct MallowsDataset {
    /// Candidate database.
    pub db: CandidateDb,
    /// Group index over the database.
    pub groups: GroupIndex,
    /// The modal ranking.
    pub modal: Ranking,
    /// Fairness level of the modal ranking.
    pub level: FairnessLevel,
    /// Number of base rankings to sample per profile.
    pub num_rankings: usize,
    /// Master seed.
    pub seed: u64,
}

impl MallowsDataset {
    /// Builds the dataset for one fairness level at the given scale.
    ///
    /// At `Scale::paper()` this is exactly the paper's population (90 candidates,
    /// Gender × Race with 15 cells of 6); smaller scales shrink the population but keep
    /// the same attribute structure.
    pub fn generate(level: FairnessLevel, scale: &Scale) -> Self {
        let db = population_for(scale);
        let groups = GroupIndex::new(&db);
        let modal = ModalRankingBuilder::new(&db).build(&level.target());
        Self {
            db,
            groups,
            modal,
            level,
            num_rankings: scale.mallows_rankings,
            seed: scale.seed,
        }
    }

    /// Builds a *compact* variant of the dataset sized for the exact (Fair-)Kemeny solver:
    /// a balanced Gender (2) × Race (3) population with at least two candidates per
    /// intersectional cell and roughly `scale.exact_candidates` candidates in total.
    ///
    /// The paper runs these experiments on the full 90-candidate population with CPLEX;
    /// this reduction is the documented substitution for that solver (see `DESIGN.md`).
    pub fn generate_exact(level: FairnessLevel, scale: &Scale) -> Self {
        let per_cell = (scale.exact_candidates / 6).max(2);
        let db = compact_population(per_cell);
        let groups = GroupIndex::new(&db);
        let modal = ModalRankingBuilder::new(&db).build(&level.target());
        Self {
            db,
            groups,
            modal,
            level,
            num_rankings: scale.mallows_rankings,
            seed: scale.seed,
        }
    }

    /// Samples a profile of base rankings at dispersion θ.
    pub fn profile(&self, theta: f64) -> RankingProfile {
        MallowsModel::new(self.modal.clone(), theta)
            .sample_profile(self.num_rankings, self.seed ^ (theta * 1e6) as u64)
    }

    /// Parity scores of the modal ranking (the values reported in Table I).
    pub fn modal_parity(&self) -> ParityScores {
        ParityScores::compute(&self.modal, &self.groups)
    }
}

/// The population used by the Table I datasets at the requested scale: the paper's
/// Gender (3) × Race (5) structure with balanced intersectional cells, sized so the total
/// is at least `mallows_candidates` (rounded up to a multiple of 15 as in the paper).
fn population_for(scale: &Scale) -> CandidateDb {
    let per_cell = scale.mallows_candidates.div_ceil(15).max(1);
    gender_race_population(per_cell)
}

/// Regenerates Table I: the modal-ranking parity scores of all three datasets.
pub fn table1(scale: &Scale) -> TextTable {
    let mut table = TextTable::new(
        format!(
            "Table I — Mallows datasets ({} rankings over {} candidates)",
            scale.mallows_rankings, scale.mallows_candidates
        ),
        &["Dataset", "ARP_Gender", "ARP_Race", "IRP"],
    );
    for level in FairnessLevel::all() {
        let dataset = MallowsDataset::generate(level, scale);
        let parity = dataset.modal_parity();
        let gender = dataset.db.schema().attribute_id("Gender").expect("schema");
        let race = dataset.db.schema().attribute_id("Race").expect("schema");
        table.push_row(vec![
            level.name().to_string(),
            fmt3(parity.arp(gender)),
            fmt3(parity.arp(race)),
            fmt3(parity.irp()),
        ]);
    }
    table
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn levels_have_expected_ordering() {
        let scale = Scale::smoke();
        let low = MallowsDataset::generate(FairnessLevel::LowFair, &scale);
        let high = MallowsDataset::generate(FairnessLevel::HighFair, &scale);
        assert!(low.modal_parity().max_violation() >= high.modal_parity().max_violation());
    }

    #[test]
    fn profiles_are_reproducible_and_sized() {
        let scale = Scale::smoke();
        let ds = MallowsDataset::generate(FairnessLevel::MediumFair, &scale);
        let a = ds.profile(0.6);
        let b = ds.profile(0.6);
        assert_eq!(a.rankings(), b.rankings());
        assert_eq!(a.len(), scale.mallows_rankings);
        assert_eq!(a.num_candidates(), scale.mallows_candidates);
    }

    #[test]
    fn table1_has_three_rows_with_bounded_scores() {
        let table = table1(&Scale::smoke());
        assert_eq!(table.len(), 3);
        for row in table.rows() {
            for cell in &row[1..] {
                let v: f64 = cell.parse().unwrap();
                assert!((0.0..=1.0).contains(&v));
            }
        }
    }

    #[test]
    fn paper_scale_uses_the_90_candidate_population() {
        let ds = MallowsDataset::generate(FairnessLevel::LowFair, &Scale::paper());
        assert_eq!(ds.db.len(), 90);
        assert_eq!(ds.db.schema().intersection_cardinality(), 15);
    }

    #[test]
    fn level_metadata_is_consistent() {
        assert_eq!(FairnessLevel::all().len(), 3);
        assert_eq!(FairnessLevel::LowFair.name(), "Low-Fair");
        assert_eq!(
            FairnessLevel::HighFair.target().attribute_arp,
            vec![0.3, 0.3]
        );
    }
}
