//! Shared helpers for running MFCR methods inside experiments: timing, method selection,
//! and gathering per-method metric rows.

use std::time::{Duration, Instant};

use mani_core::{MethodKind, MfcrContext, MfcrOutcome};
use mani_fairness::FairnessThresholds;
use mani_ranking::{CandidateDb, GroupIndex, RankingProfile, Result};

use crate::config::Scale;

/// A method run together with its wall-clock time.
#[derive(Debug, Clone)]
pub struct TimedOutcome {
    /// Which method was run.
    pub kind: MethodKind,
    /// The evaluated outcome.
    pub outcome: MfcrOutcome,
    /// Wall-clock runtime of the method (excluding dataset generation).
    pub runtime: Duration,
}

/// Runs one method in a context and measures its runtime, using the default solver budget.
pub fn run_method(kind: MethodKind, ctx: &MfcrContext<'_>) -> Result<TimedOutcome> {
    run_method_with_budget(kind, ctx, None)
}

/// Runs one method with an explicit branch-and-bound node budget for the exact methods.
pub fn run_method_with_budget(
    kind: MethodKind,
    ctx: &MfcrContext<'_>,
    max_nodes: Option<u64>,
) -> Result<TimedOutcome> {
    let method = match max_nodes {
        Some(nodes) => kind.instantiate_with_nodes(nodes),
        None => kind.instantiate(),
    };
    let start = Instant::now();
    let outcome = method.solve(ctx)?;
    let runtime = start.elapsed();
    Ok(TimedOutcome {
        kind,
        outcome,
        runtime,
    })
}

/// Runs a set of methods over the same context with the scale's solver budget.
pub fn run_methods(
    kinds: &[MethodKind],
    ctx: &MfcrContext<'_>,
    scale: &Scale,
) -> Result<Vec<TimedOutcome>> {
    kinds
        .iter()
        .map(|&kind| run_method_with_budget(kind, ctx, Some(scale.solver_max_nodes)))
        .collect()
}

/// The methods that are feasible to run at a given candidate-set size: the exact
/// optimisation methods (Fair-Kemeny, Kemeny, Kemeny-Weighted) are only included up to the
/// scale's `exact_candidates` cutoff.
pub fn methods_for_size(scale: &Scale, num_candidates: usize) -> Vec<MethodKind> {
    MethodKind::all()
        .into_iter()
        .filter(|kind| {
            let exact = matches!(
                kind,
                MethodKind::FairKemeny | MethodKind::Kemeny | MethodKind::KemenyWeighted
            );
            !exact || num_candidates <= scale.exact_candidates
        })
        .collect()
}

/// Convenience bundle that owns a database/profile so experiments can build contexts.
#[derive(Debug, Clone)]
pub struct OwnedContext {
    /// Candidate database.
    pub db: CandidateDb,
    /// Group index over the database.
    pub groups: GroupIndex,
    /// Base rankings.
    pub profile: RankingProfile,
}

impl OwnedContext {
    /// Bundles owned inputs.
    pub fn new(db: CandidateDb, profile: RankingProfile) -> Self {
        let groups = GroupIndex::new(&db);
        Self {
            db,
            groups,
            profile,
        }
    }

    /// Borrows an [`MfcrContext`] with the given thresholds.
    pub fn context(&self, thresholds: FairnessThresholds) -> MfcrContext<'_> {
        MfcrContext::new(&self.db, &self.groups, &self.profile, thresholds)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::{FairnessLevel, MallowsDataset};

    #[test]
    fn run_method_times_and_evaluates() {
        let scale = Scale::smoke();
        let ds = MallowsDataset::generate(FairnessLevel::LowFair, &scale);
        let owned = OwnedContext::new(ds.db.clone(), ds.profile(0.6));
        let ctx = owned.context(FairnessThresholds::uniform(0.1));
        let timed = run_method(MethodKind::FairBorda, &ctx).unwrap();
        assert_eq!(timed.kind, MethodKind::FairBorda);
        assert!(timed.outcome.criteria.is_satisfied());
        assert!(timed.runtime.as_nanos() > 0);
    }

    #[test]
    fn methods_for_size_drops_exact_methods_above_cutoff() {
        let scale = Scale::smoke();
        let small = methods_for_size(&scale, scale.exact_candidates);
        assert_eq!(small.len(), 8);
        let large = methods_for_size(&scale, scale.exact_candidates + 1);
        assert_eq!(large.len(), 5);
        assert!(!large.contains(&MethodKind::FairKemeny));
        assert!(!large.contains(&MethodKind::Kemeny));
        assert!(!large.contains(&MethodKind::KemenyWeighted));
    }

    #[test]
    fn run_methods_preserves_order() {
        let scale = Scale::smoke();
        let ds = MallowsDataset::generate(FairnessLevel::HighFair, &scale);
        let owned = OwnedContext::new(ds.db.clone(), ds.profile(0.4));
        let ctx = owned.context(FairnessThresholds::uniform(0.2));
        let kinds = [MethodKind::FairBorda, MethodKind::PickFairestPerm];
        let outcomes = run_methods(&kinds, &ctx, &scale).unwrap();
        assert_eq!(outcomes.len(), 2);
        assert_eq!(outcomes[0].kind, MethodKind::FairBorda);
        assert_eq!(outcomes[1].kind, MethodKind::PickFairestPerm);
    }
}
