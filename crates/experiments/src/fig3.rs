//! Figure 3 — comparing group fairness constraint formulations.
//!
//! For each fairness level (Low/Medium/High-Fair) and each θ, the experiment builds the
//! Mallows profile and solves the consensus problem with four constraint configurations:
//! plain Kemeny (no constraints), protected-attribute-only constraints, intersection-only
//! constraints, and the full MANI-Rank constraints — all via the exact Fair-Kemeny
//! formulation with Δ = 0.1. The reported series are the resulting ARP (Gender, Race) and
//! IRP scores; only the full MANI-Rank configuration drives all three below Δ.

use mani_core::{ExactKemeny, FairKemeny, MfcrMethod, MfcrOutcome};
use mani_fairness::FairnessThresholds;
use mani_ranking::Result;
use mani_solver::SolverConfig;

use crate::config::Scale;
use crate::datasets::{FairnessLevel, MallowsDataset};
use crate::runner::OwnedContext;
use crate::table::{fmt3, TextTable};

/// The Δ used throughout Figure 3 in the paper.
pub const FIG3_DELTA: f64 = 0.1;

/// Constraint configurations compared in Figure 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConstraintApproach {
    /// Fairness-unaware Kemeny.
    Unconstrained,
    /// Only protected-attribute constraints (Equation 11).
    AttributesOnly,
    /// Only the intersection constraint (Equation 12).
    IntersectionOnly,
    /// Full MANI-Rank constraints.
    ManiRank,
}

impl ConstraintApproach {
    /// All four approaches in presentation order.
    pub fn all() -> [ConstraintApproach; 4] {
        [
            ConstraintApproach::Unconstrained,
            ConstraintApproach::AttributesOnly,
            ConstraintApproach::IntersectionOnly,
            ConstraintApproach::ManiRank,
        ]
    }

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            ConstraintApproach::Unconstrained => "Kemeny (unconstrained)",
            ConstraintApproach::AttributesOnly => "Attributes-only",
            ConstraintApproach::IntersectionOnly => "Intersection-only",
            ConstraintApproach::ManiRank => "MANI-Rank",
        }
    }

    /// The threshold configuration this approach corresponds to.
    pub fn thresholds(&self) -> FairnessThresholds {
        match self {
            ConstraintApproach::Unconstrained => FairnessThresholds::unconstrained(),
            ConstraintApproach::AttributesOnly => FairnessThresholds::attributes_only(FIG3_DELTA),
            ConstraintApproach::IntersectionOnly => {
                FairnessThresholds::intersection_only(FIG3_DELTA)
            }
            ConstraintApproach::ManiRank => FairnessThresholds::uniform(FIG3_DELTA),
        }
    }
}

fn solve_with_approach(
    owned: &OwnedContext,
    approach: ConstraintApproach,
    scale: &Scale,
) -> Result<MfcrOutcome> {
    let ctx = owned.context(approach.thresholds());
    let solver_config = SolverConfig::with_max_nodes(scale.solver_max_nodes);
    match approach {
        ConstraintApproach::Unconstrained => ExactKemeny::with_config(solver_config).solve(&ctx),
        _ => FairKemeny::with_config(solver_config).solve(&ctx),
    }
}

/// Runs Figure 3 and returns one row per (fairness level, θ, approach).
///
/// Because the exact solver replaces CPLEX, the candidate count is capped at the scale's
/// `exact_candidates` by sub-sampling the population (documented substitution).
pub fn run(scale: &Scale) -> Result<TextTable> {
    let mut table = TextTable::new(
        format!("Figure 3 — group fairness approaches (Δ = {FIG3_DELTA})"),
        &[
            "dataset",
            "theta",
            "approach",
            "ARP_Gender",
            "ARP_Race",
            "IRP",
            "meets_delta",
        ],
    );
    for level in FairnessLevel::all() {
        // Compact population sized for the exact solver (the CPLEX substitution).
        let dataset = MallowsDataset::generate_exact(level, scale);
        let gender = dataset.db.schema().attribute_id("Gender").expect("schema");
        let race = dataset.db.schema().attribute_id("Race").expect("schema");
        for &theta in &scale.thetas {
            let owned = OwnedContext::new(dataset.db.clone(), dataset.profile(theta));
            for approach in ConstraintApproach::all() {
                let outcome = solve_with_approach(&owned, approach, scale)?;
                let parity = outcome.criteria.parity();
                let meets = parity.arp(gender) <= FIG3_DELTA + 1e-9
                    && parity.arp(race) <= FIG3_DELTA + 1e-9
                    && parity.irp() <= FIG3_DELTA + 1e-9;
                table.push_row(vec![
                    level.name().to_string(),
                    format!("{theta:.1}"),
                    approach.name().to_string(),
                    fmt3(parity.arp(gender)),
                    fmt3(parity.arp(race)),
                    fmt3(parity.irp()),
                    meets.to_string(),
                ]);
            }
        }
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approaches_metadata() {
        assert_eq!(ConstraintApproach::all().len(), 4);
        assert!(ConstraintApproach::Unconstrained
            .thresholds()
            .is_unconstrained());
        assert_eq!(
            ConstraintApproach::ManiRank.thresholds().default_delta(),
            FIG3_DELTA
        );
    }

    #[test]
    fn mani_rank_is_the_only_approach_meeting_all_axes() {
        // Tiny but representative configuration so the exact solver stays fast.
        let mut scale = Scale::smoke();
        scale.mallows_rankings = 12;
        scale.exact_candidates = 12;
        scale.solver_max_nodes = 50_000;
        scale.thetas = vec![0.8];

        let table = run(&scale).unwrap();
        // rows: 3 levels x 1 theta x 4 approaches
        assert_eq!(table.len(), 12);
        for (i, row) in table.rows().iter().enumerate() {
            let approach = &row[2];
            let meets: bool = row[6].parse().unwrap();
            if approach == ConstraintApproach::ManiRank.name() {
                assert!(meets, "row {i}: MANI-Rank must satisfy all axes");
            }
            if approach == ConstraintApproach::Unconstrained.name() && row[0] == "Low-Fair" {
                assert!(
                    !meets,
                    "row {i}: unconstrained Kemeny on Low-Fair must violate Δ"
                );
            }
        }
    }
}
