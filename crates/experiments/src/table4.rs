//! Table IV — the student merit-scholarship case study.
//!
//! Three base rankings (Math, Reading, Writing scores over 200 students with Gender, Race,
//! and Lunch attributes) are aggregated with fairness-unaware Kemeny and with the four
//! Fair-* methods at Δ = 0.05. For every ranking the table reports the FPR of each
//! protected-attribute group, the ARP of each attribute, and the IRP — the same columns as
//! the paper's Table IV.
//!
//! Exact Kemeny over 200 candidates is beyond our CPLEX substitute, so the fairness-unaware
//! consensus row uses the Kemeny local-search refinement of the Borda consensus (labelled
//! "Kemeny (local search)"); its bias pattern is what matters for the case study.

use mani_aggregation::{kemeny_local_search, BordaAggregator, LocalSearchConfig};
use mani_core::{MethodKind, MfcrContext};
use mani_datagen::{ExamConfig, ExamDataset};
use mani_fairness::{FairnessAudit, FairnessThresholds};
use mani_ranking::{GroupIndex, Ranking, Result};

use crate::config::Scale;
use crate::runner::run_method_with_budget;
use crate::table::{fmt3, TextTable};

/// The Δ used by the case study.
pub const TABLE4_DELTA: f64 = 0.05;

/// Builds a Table IV style row from a fairness audit.
fn audit_row(audit: &FairnessAudit) -> Vec<String> {
    let fpr = |attr: &str, group: &str| -> String {
        audit
            .fpr_of(attr, group)
            .map(fmt3)
            .unwrap_or_else(|| "n/a".to_string())
    };
    let arp = |attr: &str| -> String {
        audit
            .arp_of(attr)
            .map(fmt3)
            .unwrap_or_else(|| "n/a".to_string())
    };
    vec![
        audit.label.clone(),
        fpr("Gender", "Men"),
        fpr("Gender", "Women"),
        arp("Gender"),
        fpr("Lunch", "NoSub"),
        fpr("Lunch", "SubLunch"),
        arp("Lunch"),
        arp("Race"),
        fmt3(audit.irp),
    ]
}

/// Runs Table IV and returns one row per ranking (three subjects, Kemeny, four Fair-*).
pub fn run(scale: &Scale) -> Result<TextTable> {
    let mut table = TextTable::new(
        format!("Table IV — exam case study (Δ = {TABLE4_DELTA})"),
        &[
            "Ranking", "Men", "Women", "Gender", "NoSub", "SubLunch", "Lunch", "Race", "IRP",
        ],
    );
    let dataset = ExamDataset::generate(&ExamConfig {
        num_students: scale.exam_students,
        seed: scale.seed,
        ..ExamConfig::default()
    });
    let groups = GroupIndex::new(&dataset.db);

    // Base rankings.
    for (subject, ranking) in dataset.subjects.iter().zip(dataset.profile.rankings()) {
        let audit = FairnessAudit::new(*subject, ranking, &dataset.db, &groups);
        table.push_row(audit_row(&audit));
    }

    // Fairness-unaware consensus (Kemeny objective via local search at this size).
    let matrix = dataset.profile.precedence_matrix();
    let borda = BordaAggregator::new().consensus(&dataset.profile);
    let (kemeny_ranking, _): (Ranking, u64) =
        kemeny_local_search(&matrix, &borda, LocalSearchConfig::default())?;
    let audit = FairnessAudit::new(
        "Kemeny (local search)",
        &kemeny_ranking,
        &dataset.db,
        &groups,
    );
    table.push_row(audit_row(&audit));

    // The four proposed Fair-* methods (Fair-Kemeny runs in anytime mode at this size).
    let ctx = MfcrContext::new(
        &dataset.db,
        &groups,
        &dataset.profile,
        FairnessThresholds::uniform(TABLE4_DELTA),
    );
    for kind in [
        MethodKind::FairKemeny,
        MethodKind::FairSchulze,
        MethodKind::FairBorda,
        MethodKind::FairCopeland,
    ] {
        let timed = run_method_with_budget(kind, &ctx, Some(scale.solver_max_nodes))?;
        let audit = timed.outcome.audit(&ctx);
        table.push_row(audit_row(&audit));
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_scale() -> Scale {
        let mut scale = Scale::smoke();
        // Use the paper's cohort size: smaller cohorts leave intersectional cells with one
        // or two students, for which Δ = 0.05 is not always reachable.
        scale.exam_students = 200;
        // Fair-Kemeny over 200 candidates runs in anytime mode; keep the budget small.
        scale.solver_max_nodes = 20_000;
        scale
    }

    #[test]
    fn base_rankings_are_biased_and_fair_methods_remove_it() {
        let table = run(&tiny_scale()).unwrap();
        assert_eq!(table.len(), 8);
        // Subject rankings and the unfair consensus carry substantial Lunch bias.
        for row_idx in 0..4 {
            let lunch_arp: f64 = table.cell(row_idx, "Lunch").unwrap().parse().unwrap();
            assert!(
                lunch_arp > TABLE4_DELTA,
                "row {row_idx} lunch ARP {lunch_arp}"
            );
        }
        // Every Fair-* row is at or below delta on every reported axis.
        for row_idx in 4..8 {
            for axis in ["Gender", "Lunch", "Race", "IRP"] {
                let value: f64 = table.cell(row_idx, axis).unwrap().parse().unwrap();
                assert!(
                    value <= TABLE4_DELTA + 1e-9,
                    "row {row_idx} axis {axis} = {value}"
                );
            }
        }
    }

    #[test]
    fn fair_rows_have_near_equal_group_fprs() {
        let table = run(&tiny_scale()).unwrap();
        for row_idx in 4..8 {
            let men: f64 = table.cell(row_idx, "Men").unwrap().parse().unwrap();
            let women: f64 = table.cell(row_idx, "Women").unwrap().parse().unwrap();
            assert!((men - 0.5).abs() < 0.06);
            assert!((women - 0.5).abs() < 0.06);
        }
    }
}
