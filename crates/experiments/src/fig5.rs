//! Figure 5 — the Price of Fairness.
//!
//! Left panel: PoF of Fair-Kemeny as a function of θ for the Low/Medium/High-Fair datasets
//! (Δ = 0.1). Right panel: PoF of the four Fair-* methods and Correct-Fairest-Perm as a
//! function of Δ on the Low-Fair dataset at θ = 0.6. PoF is computed against the
//! fairness-unaware Kemeny consensus of the same profile (Equation 13).

use mani_core::{ExactKemeny, MethodKind, MfcrMethod};
use mani_fairness::FairnessThresholds;
use mani_ranking::Result;
use mani_solver::SolverConfig;

use crate::config::Scale;
use crate::datasets::{FairnessLevel, MallowsDataset};
use crate::runner::{run_method_with_budget, OwnedContext};
use crate::table::{fmt3, TextTable};

/// Output of the Figure 5 experiment: both panels.
#[derive(Debug, Clone)]
pub struct Fig5Output {
    /// Left panel: θ vs PoF per dataset (Fair-Kemeny, Δ = 0.1).
    pub theta_panel: TextTable,
    /// Right panel: Δ vs PoF per method (Low-Fair, θ = 0.6).
    pub delta_panel: TextTable,
}

/// Runs both panels of Figure 5.
pub fn run(scale: &Scale) -> Result<Fig5Output> {
    let solver_config = SolverConfig::with_max_nodes(scale.solver_max_nodes);

    // Left panel: θ vs PoF for Fair-Kemeny on each dataset.
    let mut theta_panel = TextTable::new(
        "Figure 5 (left) — Fair-Kemeny PoF vs θ (Δ = 0.1)",
        &["dataset", "theta", "pd_loss_fair", "pd_loss_kemeny", "pof"],
    );
    for level in FairnessLevel::all() {
        let dataset = MallowsDataset::generate_exact(level, scale);
        for &theta in &scale.thetas {
            let owned = OwnedContext::new(dataset.db.clone(), dataset.profile(theta));
            let ctx = owned.context(FairnessThresholds::uniform(0.1));
            let fair =
                run_method_with_budget(MethodKind::FairKemeny, &ctx, Some(scale.solver_max_nodes))?;
            let unfair = ExactKemeny::with_config(solver_config.clone()).solve(&ctx)?;
            let pof = fair.outcome.pd_loss - unfair.pd_loss;
            theta_panel.push_row(vec![
                level.name().to_string(),
                format!("{theta:.1}"),
                fmt3(fair.outcome.pd_loss),
                fmt3(unfair.pd_loss),
                fmt3(pof),
            ]);
        }
    }

    // Right panel: Δ vs PoF on the Low-Fair dataset at θ = 0.6.
    let mut delta_panel = TextTable::new(
        "Figure 5 (right) — PoF vs Δ (Low-Fair, θ = 0.6)",
        &["delta", "method", "pd_loss_fair", "pd_loss_kemeny", "pof"],
    );
    let dataset = MallowsDataset::generate_exact(FairnessLevel::LowFair, scale);
    let theta = 0.6;
    let owned = OwnedContext::new(dataset.db.clone(), dataset.profile(theta));
    let unfair_ctx = owned.context(FairnessThresholds::unconstrained());
    let unfair = ExactKemeny::with_config(solver_config).solve(&unfair_ctx)?;
    let methods = [
        MethodKind::FairKemeny,
        MethodKind::FairSchulze,
        MethodKind::FairBorda,
        MethodKind::FairCopeland,
        MethodKind::CorrectFairestPerm,
    ];
    for &delta in &scale.deltas {
        let ctx = owned.context(FairnessThresholds::uniform(delta));
        for kind in methods {
            let fair = run_method_with_budget(kind, &ctx, Some(scale.solver_max_nodes))?;
            let pof = fair.outcome.pd_loss - unfair.pd_loss;
            delta_panel.push_row(vec![
                format!("{delta:.2}"),
                kind.paper_label().to_string(),
                fmt3(fair.outcome.pd_loss),
                fmt3(unfair.pd_loss),
                fmt3(pof),
            ]);
        }
    }

    Ok(Fig5Output {
        theta_panel,
        delta_panel,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_scale() -> Scale {
        let mut scale = Scale::smoke();
        scale.mallows_candidates = 14;
        scale.mallows_rankings = 10;
        scale.exact_candidates = 14;
        scale.thetas = vec![0.6];
        scale.deltas = vec![0.1, 0.4];
        scale
    }

    #[test]
    fn pof_is_nonnegative_for_fair_kemeny() {
        let output = run(&tiny_scale()).unwrap();
        assert_eq!(output.theta_panel.len(), 3);
        for row in output.theta_panel.rows() {
            let pof: f64 = row[4].parse().unwrap();
            assert!(pof >= -1e-9, "PoF must be non-negative, got {pof}");
        }
    }

    #[test]
    fn looser_delta_never_costs_more_for_fair_kemeny() {
        let output = run(&tiny_scale()).unwrap();
        let pof_at = |delta: &str| -> f64 {
            output
                .delta_panel
                .rows()
                .iter()
                .find(|r| r[0] == delta && r[1].contains("Fair-Kemeny"))
                .map(|r| r[4].parse().unwrap())
                .unwrap()
        };
        assert!(pof_at("0.40") <= pof_at("0.10") + 1e-9);
    }
}
