//! Regenerates the paper's Figure6 experiment at the requested scale.

use mani_experiments::{fig6, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = Scale::from_args(&args);
    let table = fig6::run(&scale).expect("experiment failed");
    print!("{}", table.render());
    match table.write_csv(&scale.output_dir(), "fig6_scalability_rankers.csv") {
        Ok(path) => println!("\nCSV written to {}", path.display()),
        Err(err) => eprintln!("failed to write CSV: {err}"),
    }
}
