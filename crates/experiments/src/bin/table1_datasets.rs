//! Regenerates Table I: the Low/Medium/High-Fair Mallows dataset definitions.

use mani_experiments::{datasets, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = Scale::from_args(&args);
    let table = datasets::table1(&scale);
    print!("{}", table.render());
    match table.write_csv(&scale.output_dir(), "table1_datasets.csv") {
        Ok(path) => println!("\nCSV written to {}", path.display()),
        Err(err) => eprintln!("failed to write CSV: {err}"),
    }
}
