//! Regenerates the paper's Figure3 experiment at the requested scale.

use mani_experiments::{fig3, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = Scale::from_args(&args);
    let table = fig3::run(&scale).expect("experiment failed");
    print!("{}", table.render());
    match table.write_csv(&scale.output_dir(), "fig3_constraint_comparison.csv") {
        Ok(path) => println!("\nCSV written to {}", path.display()),
        Err(err) => eprintln!("failed to write CSV: {err}"),
    }
}
