//! Regenerates the paper's Figure 5 (both Price-of-Fairness panels).

use mani_experiments::{fig5, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = Scale::from_args(&args);
    let output = fig5::run(&scale).expect("experiment failed");
    print!("{}", output.theta_panel.render());
    println!();
    print!("{}", output.delta_panel.render());
    let dir = scale.output_dir();
    for (table, name) in [
        (&output.theta_panel, "fig5_pof_vs_theta.csv"),
        (&output.delta_panel, "fig5_pof_vs_delta.csv"),
    ] {
        match table.write_csv(&dir, name) {
            Ok(path) => println!("CSV written to {}", path.display()),
            Err(err) => eprintln!("failed to write CSV: {err}"),
        }
    }
}
