//! Runs every experiment in sequence and writes all CSV outputs.
//!
//! Usage: `run_all_experiments [--scale smoke|paper]`

use mani_experiments::{
    datasets, fig3, fig4, fig5, fig6, fig7, table2, table3, table4, table5, Scale,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = Scale::from_args(&args);
    let dir = scale.output_dir();
    println!(
        "Running all experiments at scale `{}`; CSV output in {}\n",
        scale.name,
        dir.display()
    );

    let emit = |name: &str, table: mani_experiments::TextTable| {
        print!("{}", table.render());
        println!();
        if let Err(err) = table.write_csv(&dir, name) {
            eprintln!("failed to write {name}: {err}");
        }
    };

    emit("table1_datasets.csv", datasets::table1(&scale));
    emit(
        "fig3_constraint_comparison.csv",
        fig3::run(&scale).expect("fig3"),
    );
    emit(
        "fig4_method_comparison.csv",
        fig4::run(&scale).expect("fig4"),
    );
    let fig5_output = fig5::run(&scale).expect("fig5");
    emit("fig5_pof_vs_theta.csv", fig5_output.theta_panel);
    emit("fig5_pof_vs_delta.csv", fig5_output.delta_panel);
    emit(
        "fig6_scalability_rankers.csv",
        fig6::run(&scale).expect("fig6"),
    );
    emit(
        "fig7_scalability_candidates.csv",
        fig7::run(&scale).expect("fig7"),
    );
    emit(
        "table2_fair_borda_rankers.csv",
        table2::run(&scale).expect("table2"),
    );
    emit(
        "table3_fair_borda_candidates.csv",
        table3::run(&scale).expect("table3"),
    );
    emit(
        "table4_exam_case_study.csv",
        table4::run(&scale).expect("table4"),
    );
    emit(
        "table5_csrankings_case_study.csv",
        table5::run(&scale).expect("table5"),
    );
    println!("All experiments complete.");
}
