//! Regenerates the paper's TableIII experiment at the requested scale.

use mani_experiments::{table3, Scale};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let scale = Scale::from_args(&args);
    let table = table3::run(&scale).expect("experiment failed");
    print!("{}", table.render());
    match table.write_csv(&scale.output_dir(), "table3_fair_borda_candidates.csv") {
        Ok(path) => println!("\nCSV written to {}", path.display()),
        Err(err) => eprintln!("failed to write CSV: {err}"),
    }
}
