//! Table V — the CSRankings case study (appendix).
//!
//! Twenty-one yearly rankings of 65 CS departments with Location and Type attributes are
//! aggregated with fairness-unaware Kemeny (local-search refinement at this size) and the
//! four Fair-* methods at Δ = 0.05. The table reports, per ranking, the FPR of every
//! Location and Type group, the ARP of both attributes, and the IRP — the same columns as
//! the paper's Table V.

use mani_aggregation::{kemeny_local_search, BordaAggregator, LocalSearchConfig};
use mani_core::{MethodKind, MfcrContext};
use mani_datagen::{CsRankingsConfig, CsRankingsDataset};
use mani_fairness::{FairnessAudit, FairnessThresholds};
use mani_ranking::{GroupIndex, Result};

use crate::config::Scale;
use crate::runner::run_method_with_budget;
use crate::table::{fmt3, TextTable};

/// The Δ used by the CSRankings case study.
pub const TABLE5_DELTA: f64 = 0.05;

fn audit_row(audit: &FairnessAudit) -> Vec<String> {
    let fpr = |attr: &str, group: &str| -> String {
        audit
            .fpr_of(attr, group)
            .map(fmt3)
            .unwrap_or_else(|| "n/a".to_string())
    };
    let arp = |attr: &str| -> String {
        audit
            .arp_of(attr)
            .map(fmt3)
            .unwrap_or_else(|| "n/a".to_string())
    };
    vec![
        audit.label.clone(),
        fpr("Location", "Northeast"),
        fpr("Location", "Midwest"),
        fpr("Location", "West"),
        fpr("Location", "South"),
        arp("Location"),
        fpr("Type", "Private"),
        fpr("Type", "Public"),
        arp("Type"),
        fmt3(audit.irp),
    ]
}

/// Runs Table V and returns one row per yearly ranking plus consensus rows.
pub fn run(scale: &Scale) -> Result<TextTable> {
    let mut table = TextTable::new(
        format!("Table V — CSRankings case study (Δ = {TABLE5_DELTA})"),
        &[
            "Ranking",
            "Northeast",
            "Midwest",
            "West",
            "South",
            "Location",
            "Private",
            "Public",
            "Type",
            "IRP",
        ],
    );
    let dataset = CsRankingsDataset::generate(&CsRankingsConfig {
        num_departments: scale.csrankings_departments,
        num_years: scale.csrankings_years,
        seed: scale.seed,
        ..CsRankingsConfig::default()
    });
    let groups = GroupIndex::new(&dataset.db);

    for (year, ranking) in dataset.years.iter().zip(dataset.profile.rankings()) {
        let audit = FairnessAudit::new(year.to_string(), ranking, &dataset.db, &groups);
        table.push_row(audit_row(&audit));
    }

    let matrix = dataset.profile.precedence_matrix();
    let borda = BordaAggregator::new().consensus(&dataset.profile);
    let (kemeny_ranking, _) = kemeny_local_search(&matrix, &borda, LocalSearchConfig::default())?;
    let audit = FairnessAudit::new(
        "Kemeny (local search)",
        &kemeny_ranking,
        &dataset.db,
        &groups,
    );
    table.push_row(audit_row(&audit));

    let ctx = MfcrContext::new(
        &dataset.db,
        &groups,
        &dataset.profile,
        FairnessThresholds::uniform(TABLE5_DELTA),
    );
    for kind in [
        MethodKind::FairKemeny,
        MethodKind::FairSchulze,
        MethodKind::FairBorda,
        MethodKind::FairCopeland,
    ] {
        let timed = run_method_with_budget(kind, &ctx, Some(scale.solver_max_nodes))?;
        let audit = timed.outcome.audit(&ctx);
        table.push_row(audit_row(&audit));
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_scale() -> Scale {
        let mut scale = Scale::smoke();
        scale.csrankings_departments = 40;
        scale.csrankings_years = 8;
        scale.solver_max_nodes = 50_000;
        scale
    }

    #[test]
    fn yearly_rankings_are_biased_and_fair_methods_remove_it() {
        let table = run(&tiny_scale()).unwrap();
        // 8 yearly rows + Kemeny + 4 fair methods
        assert_eq!(table.len(), 13);
        // Yearly rankings and the unfair consensus favour the Northeast.
        for row_idx in 0..9 {
            let northeast: f64 = table.cell(row_idx, "Northeast").unwrap().parse().unwrap();
            let south: f64 = table.cell(row_idx, "South").unwrap().parse().unwrap();
            assert!(northeast > south, "row {row_idx}");
        }
        // Every Fair-* row meets delta on Location, Type, and the intersection.
        for row_idx in 9..13 {
            for axis in ["Location", "Type", "IRP"] {
                let value: f64 = table.cell(row_idx, axis).unwrap().parse().unwrap();
                assert!(
                    value <= TABLE5_DELTA + 1e-9,
                    "row {row_idx} axis {axis} = {value}"
                );
            }
        }
    }
}
