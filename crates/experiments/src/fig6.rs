//! Figure 6 — scalability in the number of base rankings.
//!
//! The paper's configuration: 100 candidates with binary Gender/Race, a modal ranking with
//! ARP(Race) = 0.15, ARP(Gender) = 0.7, IRP = 0.55, θ = 0.6, Δ = 0.1, and the number of
//! base rankings swept up to 20 000. Every method's wall-clock runtime is reported. The
//! exact optimisation methods (Fair-Kemeny, Kemeny, Kemeny-Weighted) are only run while the
//! candidate count is at or below the scale's exact cutoff — above that our CPLEX
//! substitute would time out; see `DESIGN.md`.

use mani_datagen::{binary_population, FairnessTarget, MallowsModel, ModalRankingBuilder};
use mani_fairness::FairnessThresholds;
use mani_ranking::Result;

use crate::config::Scale;
use crate::runner::{methods_for_size, run_methods, OwnedContext};
use crate::table::{fmt3, fmt_secs, TextTable};

/// The Δ used by Figure 6.
pub const FIG6_DELTA: f64 = 0.1;

/// The Figure 6 modal fairness target (binary Gender / binary Race population).
pub fn fig6_target() -> FairnessTarget {
    FairnessTarget {
        attribute_arp: vec![0.7, 0.15],
        irp: 0.55,
    }
}

/// Runs Figure 6 and returns one row per (|R|, method) with the measured runtime.
pub fn run(scale: &Scale) -> Result<TextTable> {
    let mut table = TextTable::new(
        format!(
            "Figure 6 — runtime vs number of base rankings (n = {}, Δ = {FIG6_DELTA})",
            scale.fig6_candidates
        ),
        &[
            "num_rankings",
            "method",
            "runtime_s",
            "pd_loss",
            "satisfies_mani_rank",
        ],
    );
    let db = binary_population(scale.fig6_candidates, 0.5, 0.5, scale.seed);
    let modal = ModalRankingBuilder::new(&db).build(&fig6_target());
    let model = MallowsModel::new(modal, 0.6);
    let kinds = methods_for_size(scale, db.len());

    for &num_rankings in &scale.fig6_ranker_counts {
        let profile = model.sample_profile(num_rankings, scale.seed ^ num_rankings as u64);
        let owned = OwnedContext::new(db.clone(), profile);
        let ctx = owned.context(FairnessThresholds::uniform(FIG6_DELTA));
        for timed in run_methods(&kinds, &ctx, scale)? {
            table.push_row(vec![
                num_rankings.to_string(),
                timed.kind.paper_label().to_string(),
                fmt_secs(timed.runtime),
                fmt3(timed.outcome.pd_loss),
                timed.outcome.criteria.is_satisfied().to_string(),
            ]);
        }
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runtime_rows_cover_all_sweep_points() {
        let mut scale = Scale::smoke();
        scale.fig6_candidates = 24;
        scale.fig6_ranker_counts = vec![5, 20];
        scale.exact_candidates = 12; // exact methods excluded at n = 24
        let table = run(&scale).unwrap();
        // 2 sweep points x 5 polynomial methods
        assert_eq!(table.len(), 10);
        for row in table.rows() {
            let runtime: f64 = row[2].parse().unwrap();
            assert!(runtime >= 0.0);
        }
    }

    #[test]
    fn proposed_methods_meet_delta_at_every_sweep_point() {
        let mut scale = Scale::smoke();
        scale.fig6_candidates = 24;
        scale.fig6_ranker_counts = vec![10];
        scale.exact_candidates = 12;
        let table = run(&scale).unwrap();
        for row in table.rows() {
            if row[1].contains("Fair-") {
                let ok: bool = row[4].parse().unwrap();
                assert!(ok, "{} must satisfy MANI-Rank", row[1]);
            }
        }
    }
}
