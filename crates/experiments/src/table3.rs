//! Table III — Fair-Borda scalability in the number of candidates.
//!
//! Same workload as Figure 7 at Δ = 0.33, Fair-Borda only, candidate counts pushed further
//! (the paper reaches 100 000; the default scales stop earlier, configurable via
//! [`Scale::table3_candidate_counts`]).

use std::time::Instant;

use mani_core::{FairBorda, MfcrMethod};
use mani_datagen::{binary_population, MallowsModel, ModalRankingBuilder};
use mani_fairness::FairnessThresholds;
use mani_ranking::Result;

use crate::config::Scale;
use crate::fig7::fig7_target;
use crate::runner::OwnedContext;
use crate::table::{fmt_secs, TextTable};

/// The Δ used by Table III in the paper.
pub const TABLE3_DELTA: f64 = 0.33;

/// Runs Table III and returns one row per candidate count.
pub fn run(scale: &Scale) -> Result<TextTable> {
    let mut table = TextTable::new(
        format!(
            "Table III — Fair-Borda candidate scale (|R| = {}, Δ = {TABLE3_DELTA})",
            scale.fig7_rankings
        ),
        &["num_candidates", "execution_time_s", "satisfies_mani_rank"],
    );
    for &n in &scale.table3_candidate_counts {
        let db = binary_population(n, 0.5, 0.5, scale.seed);
        let modal = ModalRankingBuilder::new(&db).build(&fig7_target());
        let profile = MallowsModel::new(modal, 0.6)
            .sample_profile(scale.fig7_rankings, scale.seed ^ n as u64);
        let owned = OwnedContext::new(db, profile);
        let ctx = owned.context(FairnessThresholds::uniform(TABLE3_DELTA));
        let start = Instant::now();
        let outcome = FairBorda::new().solve(&ctx)?;
        let elapsed = start.elapsed();
        table.push_row(vec![
            n.to_string(),
            fmt_secs(elapsed),
            outcome.criteria.is_satisfied().to_string(),
        ]);
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fair_borda_handles_growing_candidate_sets() {
        let mut scale = Scale::smoke();
        scale.fig7_rankings = 10;
        scale.table3_candidate_counts = vec![50, 150];
        let table = run(&scale).unwrap();
        assert_eq!(table.len(), 2);
        for row in table.rows() {
            let ok: bool = row[2].parse().unwrap();
            assert!(ok);
        }
    }
}
