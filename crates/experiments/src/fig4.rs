//! Figure 4 — comparing the eight methods on the Low-Fair dataset.
//!
//! For each θ, all proposed MFCR methods and all baselines are run with Δ = 0.1 and the
//! paper's four panels are reported as columns: PD loss, ARP(Gender), ARP(Race), and IRP.

use mani_fairness::FairnessThresholds;
use mani_ranking::Result;

use crate::config::Scale;
use crate::datasets::{FairnessLevel, MallowsDataset};
use crate::runner::{methods_for_size, run_methods, OwnedContext};
use crate::table::{fmt3, TextTable};

/// The Δ used by Figure 4.
pub const FIG4_DELTA: f64 = 0.1;

/// Runs Figure 4 and returns one row per (θ, method).
pub fn run(scale: &Scale) -> Result<TextTable> {
    let mut table = TextTable::new(
        format!("Figure 4 — MFCR methods on the Low-Fair dataset (Δ = {FIG4_DELTA})"),
        &[
            "theta",
            "method",
            "pd_loss",
            "ARP_Gender",
            "ARP_Race",
            "IRP",
            "satisfies_mani_rank",
        ],
    );
    let dataset = MallowsDataset::generate(FairnessLevel::LowFair, scale);
    let gender = dataset.db.schema().attribute_id("Gender").expect("schema");
    let race = dataset.db.schema().attribute_id("Race").expect("schema");
    let kinds = methods_for_size(scale, dataset.db.len());

    for &theta in &scale.thetas {
        let owned = OwnedContext::new(dataset.db.clone(), dataset.profile(theta));
        let ctx = owned.context(FairnessThresholds::uniform(FIG4_DELTA));
        for timed in run_methods(&kinds, &ctx, scale)? {
            let parity = timed.outcome.criteria.parity();
            table.push_row(vec![
                format!("{theta:.1}"),
                timed.kind.paper_label().to_string(),
                fmt3(timed.outcome.pd_loss),
                fmt3(parity.arp(gender)),
                fmt3(parity.arp(race)),
                fmt3(parity.irp()),
                timed.outcome.criteria.is_satisfied().to_string(),
            ]);
        }
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mani_core::MethodKind;

    fn tiny_scale() -> Scale {
        let mut scale = Scale::smoke();
        // 30 candidates (15 balanced Gender × Race cells of 2); include the exact methods in
        // anytime mode with a small node budget so the test stays fast.
        scale.mallows_candidates = 30;
        scale.mallows_rankings = 12;
        scale.exact_candidates = 30;
        scale.solver_max_nodes = 20_000;
        scale.thetas = vec![0.6];
        scale
    }

    #[test]
    fn proposed_methods_satisfy_criteria_and_unfair_baselines_do_not() {
        let table = run(&tiny_scale()).unwrap();
        assert_eq!(table.len(), 8);
        for row in table.rows() {
            let method = &row[1];
            let satisfied: bool = row[6].parse().unwrap();
            if let Some(kind) = MethodKind::parse(method) {
                if kind.is_proposed() || kind == MethodKind::CorrectFairestPerm {
                    assert!(satisfied, "{method} should satisfy MANI-Rank");
                }
                if kind == MethodKind::Kemeny {
                    assert!(!satisfied, "plain Kemeny should violate Δ on Low-Fair data");
                }
            }
        }
    }

    #[test]
    fn fair_kemeny_never_loses_to_its_own_incumbent() {
        // At this size Fair-Kemeny runs in anytime mode, but it is seeded with the
        // Fair-Borda solution, so its PD loss can never exceed Fair-Borda's. (The full
        // optimality ordering of the paper's Figure 4 is asserted in the solver tests and
        // observed at paper scale.)
        let table = run(&tiny_scale()).unwrap();
        let pd_of = |label: &str| -> f64 {
            table
                .rows()
                .iter()
                .find(|r| r[1] == label)
                .map(|r| r[2].parse().unwrap())
                .unwrap()
        };
        let fair_kemeny = pd_of(MethodKind::FairKemeny.paper_label());
        let fair_borda = pd_of(MethodKind::FairBorda.paper_label());
        assert!(fair_kemeny <= fair_borda + 1e-9);
    }
}
