//! Experiment scale configuration and output locations.

use std::path::PathBuf;

use serde::{Deserialize, Serialize};

/// Size parameters shared by all experiments.
///
/// `smoke` keeps every experiment in the seconds range (used by tests and criterion
/// benches); `paper` uses sizes close to the paper's published configuration — with the
/// exact-optimisation experiments capped at the sizes our branch-and-bound solver closes
/// reliably (the substitution for CPLEX is documented in `DESIGN.md`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scale {
    /// Human-readable name of the scale (`"smoke"` or `"paper"`).
    pub name: String,
    /// Number of candidates in the Table I style datasets used by Figures 3–5.
    pub mallows_candidates: usize,
    /// Number of base rankings in the Table I style datasets.
    pub mallows_rankings: usize,
    /// θ sweep used by Figures 3–5.
    pub thetas: Vec<f64>,
    /// Δ sweep used by Figure 5 (right panel).
    pub deltas: Vec<f64>,
    /// Candidate-set size used for experiments involving exact (Fair-)Kemeny.
    pub exact_candidates: usize,
    /// Node budget for the exact solver.
    pub solver_max_nodes: u64,
    /// Ranker counts swept by Figure 6.
    pub fig6_ranker_counts: Vec<usize>,
    /// Candidate count used by Figure 6.
    pub fig6_candidates: usize,
    /// Candidate counts swept by Figure 7.
    pub fig7_candidate_counts: Vec<usize>,
    /// Ranker count used by Figure 7.
    pub fig7_rankings: usize,
    /// Ranker counts swept by Table II (Fair-Borda only).
    pub table2_ranker_counts: Vec<usize>,
    /// Candidate counts swept by Table III (Fair-Borda only).
    pub table3_candidate_counts: Vec<usize>,
    /// Number of students in the Table IV case study.
    pub exam_students: usize,
    /// Number of departments / years in the Table V case study.
    pub csrankings_departments: usize,
    /// Number of yearly rankings in the Table V case study.
    pub csrankings_years: usize,
    /// Master seed.
    pub seed: u64,
}

impl Scale {
    /// Fast configuration used by tests and benches (seconds end-to-end).
    pub fn smoke() -> Self {
        Self {
            name: "smoke".into(),
            mallows_candidates: 30,
            mallows_rankings: 20,
            thetas: vec![0.2, 0.6],
            deltas: vec![0.1, 0.3, 0.5],
            exact_candidates: 14,
            solver_max_nodes: 100_000,
            fig6_ranker_counts: vec![10, 50, 100],
            fig6_candidates: 40,
            fig7_candidate_counts: vec![20, 40, 60],
            fig7_rankings: 20,
            table2_ranker_counts: vec![100, 1_000, 10_000],
            table3_candidate_counts: vec![100, 500, 1_000],
            exam_students: 200,
            csrankings_departments: 65,
            csrankings_years: 21,
            seed: 0x5EED,
        }
    }

    /// Configuration close to the paper's published sizes. Exact-method candidate counts
    /// are reduced (see `DESIGN.md` substitutions); everything else follows the paper.
    pub fn paper() -> Self {
        Self {
            name: "paper".into(),
            mallows_candidates: 90,
            mallows_rankings: 150,
            thetas: vec![0.2, 0.4, 0.6, 0.8],
            deltas: vec![0.1, 0.2, 0.3, 0.4, 0.5],
            exact_candidates: 24,
            solver_max_nodes: 50_000_000,
            fig6_ranker_counts: vec![100, 500, 1_000, 5_000, 10_000, 20_000],
            fig6_candidates: 100,
            fig7_candidate_counts: vec![100, 200, 300, 400, 500],
            fig7_rankings: 100,
            table2_ranker_counts: vec![1_000, 10_000, 100_000, 1_000_000],
            table3_candidate_counts: vec![1_000, 10_000, 20_000, 30_000],
            exam_students: 200,
            csrankings_departments: 65,
            csrankings_years: 21,
            seed: 0x5EED,
        }
    }

    /// Parses a scale name (`"smoke"` / `"paper"`), defaulting to smoke.
    pub fn from_name(name: &str) -> Self {
        match name.to_ascii_lowercase().as_str() {
            "paper" | "full" => Self::paper(),
            _ => Self::smoke(),
        }
    }

    /// Parses the scale from command-line arguments (`--scale paper`), defaulting to smoke.
    pub fn from_args(args: &[String]) -> Self {
        let mut iter = args.iter();
        while let Some(arg) = iter.next() {
            if arg == "--scale" {
                if let Some(value) = iter.next() {
                    return Self::from_name(value);
                }
            }
            if let Some(value) = arg.strip_prefix("--scale=") {
                return Self::from_name(value);
            }
        }
        Self::smoke()
    }

    /// Directory where experiment CSV output is written.
    pub fn output_dir(&self) -> PathBuf {
        PathBuf::from("target").join("experiments").join(&self.name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_is_smaller_than_paper() {
        let smoke = Scale::smoke();
        let paper = Scale::paper();
        assert!(smoke.mallows_candidates < paper.mallows_candidates);
        assert!(smoke.mallows_rankings < paper.mallows_rankings);
        assert!(smoke.fig6_ranker_counts.last() < paper.fig6_ranker_counts.last());
        assert!(smoke.thetas.len() <= paper.thetas.len());
    }

    #[test]
    fn from_name_parses_known_names() {
        assert_eq!(Scale::from_name("paper").name, "paper");
        assert_eq!(Scale::from_name("PAPER").name, "paper");
        assert_eq!(Scale::from_name("smoke").name, "smoke");
        assert_eq!(Scale::from_name("anything-else").name, "smoke");
    }

    #[test]
    fn from_args_parses_both_forms() {
        let args: Vec<String> = vec!["--scale".into(), "paper".into()];
        assert_eq!(Scale::from_args(&args).name, "paper");
        let args: Vec<String> = vec!["--scale=paper".into()];
        assert_eq!(Scale::from_args(&args).name, "paper");
        let args: Vec<String> = vec![];
        assert_eq!(Scale::from_args(&args).name, "smoke");
    }

    #[test]
    fn output_dir_contains_scale_name() {
        let dir = Scale::smoke().output_dir();
        assert!(dir.to_string_lossy().contains("smoke"));
    }
}
