//! # mani-experiments
//!
//! Experiment harness regenerating every table and figure of the MANI-Rank paper's
//! evaluation (Section IV and the appendix). Each experiment module exposes a `run`
//! function returning a [`table::TextTable`] with the same rows/series the paper reports;
//! the `src/bin/` binaries print those tables and write CSV copies under
//! `target/experiments/`.
//!
//! | Module | Reproduces |
//! |---|---|
//! | [`datasets`] | Table I — the Low/Medium/High-Fair Mallows datasets |
//! | [`fig3`] | Figure 3 — attribute-only vs intersection-only vs MANI-Rank constraints |
//! | [`fig4`] | Figure 4 — 8-method comparison (PD loss, ARP, IRP vs θ) |
//! | [`fig5`] | Figure 5 — Price of Fairness vs θ and vs Δ |
//! | [`fig6`] | Figure 6 — runtime vs number of base rankings |
//! | [`fig7`] | Figure 7 — runtime vs number of candidates |
//! | [`table2`] | Table II — Fair-Borda ranker scalability |
//! | [`table3`] | Table III — Fair-Borda candidate scalability |
//! | [`table4`] | Table IV — student exam case study |
//! | [`table5`] | Table V — CSRankings case study |
//!
//! All experiments accept a [`config::Scale`]: `Scale::smoke()` finishes in seconds and is
//! exercised by tests/benches, `Scale::paper()` uses sizes close to the paper's (minutes;
//! the exact-method sizes are reduced, see `DESIGN.md`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod datasets;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod runner;
pub mod table;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod table5;

pub use config::Scale;
pub use table::TextTable;
