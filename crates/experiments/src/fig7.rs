//! Figure 7 — scalability in the number of candidates, at two Δ values.
//!
//! The paper's configuration: binary Gender/Race population with a modal ranking at
//! ARP(Race) = 0.31, ARP(Gender) = 0.44, IRP = 0.45, θ = 0.6, |R| = 100, candidate count
//! swept up to 500, and Δ ∈ {0.1, 0.33}. As in Figure 6 the exact optimisation methods are
//! capped at the scale's exact-candidate cutoff.

use mani_datagen::{binary_population, FairnessTarget, MallowsModel, ModalRankingBuilder};
use mani_fairness::FairnessThresholds;
use mani_ranking::Result;

use crate::config::Scale;
use crate::runner::{methods_for_size, run_methods, OwnedContext};
use crate::table::{fmt3, fmt_secs, TextTable};

/// The two Δ values compared by Figure 7.
pub const FIG7_DELTAS: [f64; 2] = [0.1, 0.33];

/// The Figure 7 modal fairness target.
pub fn fig7_target() -> FairnessTarget {
    FairnessTarget {
        attribute_arp: vec![0.44, 0.31],
        irp: 0.45,
    }
}

/// Runs Figure 7 and returns one row per (Δ, n, method) with the measured runtime.
pub fn run(scale: &Scale) -> Result<TextTable> {
    let mut table = TextTable::new(
        format!(
            "Figure 7 — runtime vs number of candidates (|R| = {})",
            scale.fig7_rankings
        ),
        &[
            "delta",
            "num_candidates",
            "method",
            "runtime_s",
            "pd_loss",
            "satisfies_mani_rank",
        ],
    );
    for &delta in &FIG7_DELTAS {
        for &n in &scale.fig7_candidate_counts {
            let db = binary_population(n, 0.5, 0.5, scale.seed);
            let modal = ModalRankingBuilder::new(&db).build(&fig7_target());
            let profile = MallowsModel::new(modal, 0.6)
                .sample_profile(scale.fig7_rankings, scale.seed ^ n as u64);
            let owned = OwnedContext::new(db, profile);
            let ctx = owned.context(FairnessThresholds::uniform(delta));
            let kinds = methods_for_size(scale, n);
            for timed in run_methods(&kinds, &ctx, scale)? {
                table.push_row(vec![
                    format!("{delta:.2}"),
                    n.to_string(),
                    timed.kind.paper_label().to_string(),
                    fmt_secs(timed.runtime),
                    fmt3(timed.outcome.pd_loss),
                    timed.outcome.criteria.is_satisfied().to_string(),
                ]);
            }
        }
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_covers_both_deltas_and_all_sizes() {
        let mut scale = Scale::smoke();
        scale.fig7_candidate_counts = vec![16, 24];
        scale.fig7_rankings = 10;
        scale.exact_candidates = 12;
        let table = run(&scale).unwrap();
        // 2 deltas x 2 sizes x 5 polynomial methods
        assert_eq!(table.len(), 20);
        let deltas: std::collections::HashSet<&str> =
            table.rows().iter().map(|r| r[0].as_str()).collect();
        assert_eq!(deltas.len(), 2);
    }

    #[test]
    fn fair_methods_meet_their_delta() {
        let mut scale = Scale::smoke();
        scale.fig7_candidate_counts = vec![24];
        scale.fig7_rankings = 10;
        scale.exact_candidates = 12;
        let table = run(&scale).unwrap();
        for row in table.rows() {
            if row[2].contains("Fair-") {
                let ok: bool = row[5].parse().unwrap();
                assert!(ok, "{} at delta {} must satisfy MANI-Rank", row[2], row[0]);
            }
        }
    }
}
