//! Text/CSV table output used by every experiment binary.
//!
//! The table type itself lives in the shared [`mani_tabular`] crate (the
//! engine's report module renders through the same type); this module re-exports
//! it and keeps the paper-specific formatting helpers.

pub use mani_tabular::TextTable;

/// Formats a float with three decimal places (the paper's table precision).
pub fn fmt3(value: f64) -> String {
    format!("{value:.3}")
}

/// Formats a duration in seconds with three decimal places.
pub fn fmt_secs(duration: std::time::Duration) -> String {
    format!("{:.3}", duration.as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_table_renders_for_experiments() {
        let mut t = TextTable::new("Demo", &["method", "pd_loss"]);
        t.push_row(vec!["Fair-Borda".into(), "0.123".into()]);
        let text = t.render();
        assert!(text.contains("== Demo =="));
        assert!(text.contains("Fair-Borda"));
        let csv = t.to_csv();
        assert!(csv.starts_with("method,pd_loss"));
    }

    #[test]
    fn format_helpers() {
        assert_eq!(fmt3(0.5), "0.500");
        assert_eq!(fmt_secs(std::time::Duration::from_millis(1500)), "1.500");
    }
}
