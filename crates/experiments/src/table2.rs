//! Table II — Fair-Borda scalability in the number of base rankings.
//!
//! Same workload as Figure 6, but only Fair-Borda is run and the ranker count is pushed
//! much further (the paper reaches 10 million; the default scales stop earlier so the
//! harness completes in reasonable time — the counts are configurable).

use std::time::Instant;

use mani_core::{FairBorda, MfcrMethod};
use mani_datagen::{binary_population, MallowsModel, ModalRankingBuilder};
use mani_fairness::FairnessThresholds;
use mani_ranking::Result;

use crate::config::Scale;
use crate::fig6::{fig6_target, FIG6_DELTA};
use crate::runner::OwnedContext;
use crate::table::{fmt_secs, TextTable};

/// Runs Table II and returns one row per ranker count.
pub fn run(scale: &Scale) -> Result<TextTable> {
    let mut table = TextTable::new(
        format!(
            "Table II — Fair-Borda ranker scale (n = {}, Δ = {FIG6_DELTA})",
            scale.fig6_candidates
        ),
        &["num_rankings", "execution_time_s", "satisfies_mani_rank"],
    );
    let db = binary_population(scale.fig6_candidates, 0.5, 0.5, scale.seed);
    let modal = ModalRankingBuilder::new(&db).build(&fig6_target());
    let model = MallowsModel::new(modal, 0.6);

    for &num_rankings in &scale.table2_ranker_counts {
        let profile = model.sample_profile(num_rankings, scale.seed ^ num_rankings as u64);
        let owned = OwnedContext::new(db.clone(), profile);
        let ctx = owned.context(FairnessThresholds::uniform(FIG6_DELTA));
        let start = Instant::now();
        let outcome = FairBorda::new().solve(&ctx)?;
        let elapsed = start.elapsed();
        table.push_row(vec![
            num_rankings.to_string(),
            fmt_secs(elapsed),
            outcome.criteria.is_satisfied().to_string(),
        ]);
    }
    Ok(table)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fair_borda_scales_and_stays_fair() {
        let mut scale = Scale::smoke();
        scale.fig6_candidates = 30;
        scale.table2_ranker_counts = vec![20, 200];
        let table = run(&scale).unwrap();
        assert_eq!(table.len(), 2);
        for row in table.rows() {
            let ok: bool = row[2].parse().unwrap();
            assert!(ok);
        }
    }
}
