//! Batch handles: as-completed streaming over a group of [`JobHandle`]s.
//!
//! [`crate::ConsensusEngine::submit_batch_streaming`] wraps the handles from
//! [`crate::ConsensusEngine::submit_batch_async`] in a [`BatchHandle`] that
//! yields each response **the moment its job completes**, in completion order
//! — the consumer of a threshold sweep sees the cheap Fair-Borda solves while
//! the expensive Fair-Kemeny ones are still searching. Delivery is
//! condvar-based: every job's state transition pushes its index onto the
//! batch's ready queue and signals the waiter ([`crate::jobs`] hooks the
//! notification into `JobState::complete`), so [`BatchHandle::wait_next`]
//! blocks without any polling loop.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::jobs::{JobHandle, JobId};
use crate::request::ConsensusResponse;

/// Completion mailbox shared between a [`BatchHandle`] and the jobs it
/// groups. Jobs deposit their batch index on completion; the handle drains
/// indexes in arrival order.
#[derive(Debug, Default)]
pub(crate) struct BatchNotifier {
    ready: Mutex<ReadyQueue>,
    cond: Condvar,
}

#[derive(Debug, Default)]
struct ReadyQueue {
    /// Completed-but-not-yet-yielded batch indexes, in completion order.
    indexes: VecDeque<usize>,
    /// Total completions observed (monotonic; never drained).
    completed: usize,
}

impl BatchNotifier {
    /// Records that the job at `index` completed and wakes the batch waiter.
    pub(crate) fn notify(&self, index: usize) {
        let mut ready = self.ready.lock().expect("batch ready lock poisoned");
        ready.indexes.push_back(index);
        ready.completed += 1;
        self.cond.notify_all();
    }
}

/// Per-engine streaming-batch counters (surfaced via
/// [`crate::EngineStats`]).
#[derive(Debug, Default)]
pub(crate) struct BatchCounters {
    pub(crate) opened: AtomicU64,
    pub(crate) drained: AtomicU64,
    pub(crate) results_yielded: AtomicU64,
}

/// Progress of one streaming batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BatchProgress {
    /// Jobs in the batch.
    pub total: usize,
    /// Jobs that have completed (whether or not yielded yet).
    pub completed: usize,
    /// Completions already handed to the caller via `wait_next`.
    pub yielded: usize,
}

/// One completion yielded by a [`BatchHandle`], tagged with the position of
/// its request in the submitted batch.
#[derive(Debug, Clone)]
pub struct BatchItem {
    /// Index of the originating request in the submitted batch.
    pub index: usize,
    /// The job's engine-unique id.
    pub id: JobId,
    /// The completed response (shared, identical to what
    /// [`JobHandle::wait`] on the same job returns).
    pub response: Arc<ConsensusResponse>,
}

/// Groups the [`JobHandle`]s of one async batch and yields completions in
/// as-completed order.
///
/// Responses are bit-identical to [`crate::ConsensusEngine::submit_batch`]
/// over the same requests; only the delivery order differs (completion order
/// instead of request order — [`BatchItem::index`] recovers request order).
#[derive(Debug)]
pub struct BatchHandle {
    handles: Vec<JobHandle>,
    notifier: Arc<BatchNotifier>,
    yielded: usize,
    counters: Option<Arc<BatchCounters>>,
    drained_recorded: bool,
}

impl BatchHandle {
    /// Groups `handles` (e.g. from
    /// [`crate::ConsensusEngine::submit_batch_async`]) into one streaming
    /// batch. Jobs that already completed are immediately ready, in handle
    /// order.
    pub fn new(handles: Vec<JobHandle>) -> Self {
        Self::with_counters(handles, None)
    }

    pub(crate) fn with_counters(
        handles: Vec<JobHandle>,
        counters: Option<Arc<BatchCounters>>,
    ) -> Self {
        let notifier = Arc::new(BatchNotifier::default());
        for (index, handle) in handles.iter().enumerate() {
            handle.subscribe(index, &notifier);
        }
        if let Some(counters) = &counters {
            counters.opened.fetch_add(1, Ordering::Relaxed);
            if handles.is_empty() {
                counters.drained.fetch_add(1, Ordering::Relaxed);
            }
        }
        Self {
            drained_recorded: handles.is_empty(),
            handles,
            notifier,
            yielded: 0,
            counters,
        }
    }

    /// Number of jobs in the batch.
    pub fn len(&self) -> usize {
        self.handles.len()
    }

    /// True for a batch over zero requests.
    pub fn is_empty(&self) -> bool {
        self.handles.is_empty()
    }

    /// True once every completion has been yielded.
    pub fn is_drained(&self) -> bool {
        self.yielded == self.handles.len()
    }

    /// The grouped handles, in request order.
    pub fn handles(&self) -> &[JobHandle] {
        &self.handles
    }

    /// Current totals: jobs, completions, and yields so far.
    pub fn progress(&self) -> BatchProgress {
        let completed = self
            .notifier
            .ready
            .lock()
            .expect("batch ready lock poisoned")
            .completed;
        BatchProgress {
            total: self.handles.len(),
            completed,
            yielded: self.yielded,
        }
    }

    /// Blocks until the next job completes and yields it; `None` once every
    /// completion has been yielded.
    pub fn wait_next(&mut self) -> Option<BatchItem> {
        if self.is_drained() {
            return None;
        }
        let index = {
            let mut ready = self
                .notifier
                .ready
                .lock()
                .expect("batch ready lock poisoned");
            loop {
                if let Some(index) = ready.indexes.pop_front() {
                    break index;
                }
                ready = self
                    .notifier
                    .cond
                    .wait(ready)
                    .expect("batch ready lock poisoned");
            }
        };
        Some(self.yield_item(index))
    }

    /// Like [`BatchHandle::wait_next`], waiting at most `timeout` for the
    /// next completion; `None` on timeout **or** when the batch is already
    /// drained (disambiguate with [`BatchHandle::is_drained`]).
    pub fn wait_next_timeout(&mut self, timeout: Duration) -> Option<BatchItem> {
        if self.is_drained() {
            return None;
        }
        let deadline = Instant::now() + timeout;
        let index = {
            let mut ready = self
                .notifier
                .ready
                .lock()
                .expect("batch ready lock poisoned");
            loop {
                if let Some(index) = ready.indexes.pop_front() {
                    break index;
                }
                let remaining = deadline.checked_duration_since(Instant::now())?;
                let (guard, result) = self
                    .notifier
                    .cond
                    .wait_timeout(ready, remaining)
                    .expect("batch ready lock poisoned");
                ready = guard;
                if result.timed_out() && ready.indexes.is_empty() {
                    return None;
                }
            }
        };
        Some(self.yield_item(index))
    }

    /// Waits up to `timeout` for **every** remaining job to complete, then
    /// yields them all in completion order. On timeout returns `None` without
    /// consuming anything — already-yielded items stay yielded, pending
    /// completions stay pending, and the call can be retried.
    pub fn wait_all_timeout(&mut self, timeout: Duration) -> Option<Vec<BatchItem>> {
        let deadline = Instant::now() + timeout;
        let indexes: Vec<usize> = {
            let mut ready = self
                .notifier
                .ready
                .lock()
                .expect("batch ready lock poisoned");
            loop {
                if ready.completed == self.handles.len() {
                    break ready.indexes.drain(..).collect();
                }
                let remaining = deadline.checked_duration_since(Instant::now())?;
                let (guard, result) = self
                    .notifier
                    .cond
                    .wait_timeout(ready, remaining)
                    .expect("batch ready lock poisoned");
                ready = guard;
                if result.timed_out() && ready.completed < self.handles.len() {
                    return None;
                }
            }
        };
        Some(indexes.into_iter().map(|i| self.yield_item(i)).collect())
    }

    /// Yields the completed job at `index`, updating batch and engine
    /// counters.
    fn yield_item(&mut self, index: usize) -> BatchItem {
        let handle = &self.handles[index];
        let response = handle
            .try_poll()
            .expect("a notified job is always complete");
        self.yielded += 1;
        if let Some(counters) = &self.counters {
            counters.results_yielded.fetch_add(1, Ordering::Relaxed);
            if self.is_drained() && !self.drained_recorded {
                self.drained_recorded = true;
                counters.drained.fetch_add(1, Ordering::Relaxed);
            }
        }
        BatchItem {
            index,
            id: handle.id(),
            response,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::jobs::JobStatus;
    use crate::jobs::{JobHandle, JobId};
    use std::time::Duration;

    fn response(name: &str) -> ConsensusResponse {
        ConsensusResponse {
            dataset: name.into(),
            results: Vec::new(),
            total_solve_time: Duration::ZERO,
        }
    }

    /// A handle plus direct access to its completion trigger.
    fn job(raw: u64) -> (JobHandle, Arc<crate::jobs::JobState>) {
        let state = Arc::new(crate::jobs::JobState::new());
        (
            JobHandle::new(JobId::from_raw(raw), Arc::clone(&state)),
            state,
        )
    }

    #[test]
    fn yields_in_completion_order_not_request_order() {
        let (h0, s0) = job(1);
        let (h1, s1) = job(2);
        let (h2, s2) = job(3);
        let mut batch = BatchHandle::new(vec![h0, h1, h2]);
        assert_eq!(batch.len(), 3);
        assert!(!batch.is_drained());

        s2.complete(response("c"));
        s0.complete(response("a"));
        let first = batch.wait_next().expect("one job is done");
        assert_eq!(first.index, 2, "last-submitted job completed first");
        assert_eq!(first.response.dataset, "c");
        assert_eq!(first.id.as_u64(), 3);
        let second = batch.wait_next().expect("another job is done");
        assert_eq!(second.index, 0);

        let progress = batch.progress();
        assert_eq!(progress.total, 3);
        assert_eq!(progress.completed, 2);
        assert_eq!(progress.yielded, 2);

        s1.complete(response("b"));
        assert_eq!(batch.wait_next().expect("final job").index, 1);
        assert!(batch.is_drained());
        assert!(batch.wait_next().is_none(), "drained batches yield None");
    }

    #[test]
    fn jobs_completed_before_grouping_are_immediately_ready() {
        let (h0, s0) = job(1);
        s0.complete(response("early"));
        assert_eq!(h0.status(), JobStatus::Done);
        let mut batch = BatchHandle::new(vec![h0]);
        let item = batch
            .wait_next_timeout(Duration::from_millis(50))
            .expect("already-done job must be ready without a transition");
        assert_eq!(item.index, 0);
        assert_eq!(item.response.dataset, "early");
    }

    #[test]
    fn wait_next_blocks_until_a_completion_arrives() {
        let (h0, s0) = job(1);
        let mut batch = BatchHandle::new(vec![h0]);
        let completer = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(20));
            s0.complete(response("late"));
        });
        let item = batch.wait_next().expect("completion arrives");
        assert_eq!(item.response.dataset, "late");
        completer.join().unwrap();
    }

    #[test]
    fn timeouts_do_not_consume_progress() {
        let (h0, s0) = job(1);
        let (h1, s1) = job(2);
        let mut batch = BatchHandle::new(vec![h0, h1]);
        assert!(batch.wait_next_timeout(Duration::from_millis(10)).is_none());
        s0.complete(response("a"));
        // One of two jobs is done: wait_all still times out, consuming nothing.
        assert!(batch.wait_all_timeout(Duration::from_millis(10)).is_none());
        assert_eq!(batch.progress().completed, 1);
        assert_eq!(batch.progress().yielded, 0);

        s1.complete(response("b"));
        let items = batch
            .wait_all_timeout(Duration::from_millis(100))
            .expect("both jobs are done");
        assert_eq!(items.len(), 2);
        assert_eq!(items[0].index, 0, "completion order preserved");
        assert_eq!(items[1].index, 1);
        assert!(batch.is_drained());
        // Drained: wait_all returns the (empty) remainder immediately.
        assert_eq!(
            batch
                .wait_all_timeout(Duration::from_millis(10))
                .expect("nothing left to wait for")
                .len(),
            0
        );
    }

    #[test]
    fn counters_track_open_yield_drain() {
        let counters = Arc::new(BatchCounters::default());
        let (h0, s0) = job(1);
        let mut batch = BatchHandle::with_counters(vec![h0], Some(Arc::clone(&counters)));
        assert_eq!(counters.opened.load(Ordering::Relaxed), 1);
        assert_eq!(counters.drained.load(Ordering::Relaxed), 0);
        s0.complete(response("a"));
        batch.wait_next().expect("done");
        assert_eq!(counters.results_yielded.load(Ordering::Relaxed), 1);
        assert_eq!(counters.drained.load(Ordering::Relaxed), 1);

        // An empty batch opens already drained.
        let _empty = BatchHandle::with_counters(Vec::new(), Some(Arc::clone(&counters)));
        assert_eq!(counters.opened.load(Ordering::Relaxed), 2);
        assert_eq!(counters.drained.load(Ordering::Relaxed), 2);
    }
}
