//! Table-style text reports for engine responses and fairness audits.
//!
//! The table type itself is the workspace-shared [`mani_tabular::TextTable`],
//! re-exported here under its historical `ReportTable` name; this module adds
//! the engine-specific row builders on top.

use mani_fairness::FairnessAudit;
use mani_ranking::CandidateDb;

use crate::request::ConsensusResponse;

/// The shared aligned-text table (title, headers, string rows).
///
/// An alias for [`mani_tabular::TextTable`] — the same renderer the experiment
/// harness uses — kept under the engine's historical name.
pub use mani_tabular::TextTable as ReportTable;

/// One row per method of one response: PD loss, ARPs, IRP, criteria verdict,
/// correction swaps, optimality, and solve time.
pub fn response_table(response: &ConsensusResponse, attributes: &[String]) -> ReportTable {
    let mut headers: Vec<String> = vec!["method".into()];
    headers.push("pd_loss".into());
    for attribute in attributes {
        headers.push(format!("ARP_{attribute}"));
    }
    headers.extend(
        ["IRP", "fair", "swaps", "optimal", "time_ms", "cache"]
            .into_iter()
            .map(String::from),
    );
    let header_refs: Vec<&str> = headers.iter().map(String::as_str).collect();
    let mut table = ReportTable::new(format!("consensus: {}", response.dataset), &header_refs);

    for result in &response.results {
        match result {
            Ok(r) => {
                let parity = r.outcome.criteria.parity();
                let mut cells = vec![
                    r.outcome.method.to_string(),
                    format!("{:.4}", r.outcome.pd_loss),
                ];
                for arp in parity.arps() {
                    cells.push(format!("{arp:.4}"));
                }
                cells.push(format!("{:.4}", parity.irp()));
                cells.push(if r.outcome.criteria.is_satisfied() {
                    "yes".into()
                } else {
                    "NO".into()
                });
                cells.push(r.outcome.correction_swaps.to_string());
                cells.push(if r.outcome.optimal { "yes" } else { "no" }.into());
                cells.push(format!("{:.1}", r.duration.as_secs_f64() * 1e3));
                cells.push(if r.cache_hit { "hit" } else { "miss" }.into());
                table.push_row(cells);
            }
            Err(e) => table.push_row(vec!["<error>".into(), e.to_string()]),
        }
    }
    table
}

/// Per-group FPR table for one fairness audit.
pub fn audit_table(audit: &FairnessAudit) -> ReportTable {
    let mut table = ReportTable::new(
        format!("audit: {}", audit.label),
        &["attribute", "group", "size", "FPR", "ARP"],
    );
    for attribute in &audit.attributes {
        for group in &attribute.groups {
            table.push_row(vec![
                attribute.attribute.clone(),
                group.group.clone(),
                group.size.to_string(),
                group
                    .fpr
                    .map(|f| format!("{f:.4}"))
                    .unwrap_or_else(|| "-".into()),
                format!("{:.4}", attribute.arp),
            ]);
        }
    }
    for group in &audit.intersection_groups {
        table.push_row(vec![
            "Intersection".into(),
            group.group.clone(),
            group.size.to_string(),
            group
                .fpr
                .map(|f| format!("{f:.4}"))
                .unwrap_or_else(|| "-".into()),
            format!("{:.4}", audit.irp),
        ]);
    }
    table
}

/// Attribute names of a database in schema order (column labels for
/// [`response_table`]).
pub fn attribute_labels(db: &CandidateDb) -> Vec<String> {
    db.schema()
        .attributes()
        .map(|(_, a)| a.name().to_string())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::EngineDataset;
    use crate::engine::{ConsensusEngine, EngineConfig};
    use crate::request::ConsensusRequest;
    use mani_fairness::FairnessThresholds;
    use mani_ranking::{CandidateDbBuilder, GroupIndex, Ranking, RankingProfile};
    use std::sync::Arc;

    fn dataset() -> Arc<EngineDataset> {
        let mut b = CandidateDbBuilder::new();
        let g = b.add_attribute("Gender", ["M", "W"]).unwrap();
        for i in 0..8 {
            b.add_candidate(format!("c{i}"), [(g, i % 2)]).unwrap();
        }
        let db = b.build().unwrap();
        let profile = RankingProfile::new(vec![
            Ranking::identity(8),
            Ranking::identity(8).reversed(),
            Ranking::identity(8),
        ])
        .unwrap();
        Arc::new(EngineDataset::new("unit", db, profile).unwrap())
    }

    #[test]
    fn table_renders_title_headers_and_alignment() {
        let mut t = ReportTable::new("demo", &["a", "long-header"]);
        assert!(t.is_empty());
        t.push_row(vec!["x".into()]);
        assert_eq!(t.len(), 1);
        let text = t.render();
        assert!(text.contains("== demo =="));
        assert!(text.contains("long-header"));
    }

    #[test]
    fn response_table_reports_every_method() {
        let engine = ConsensusEngine::with_config(EngineConfig {
            threads: 2,
            default_budget: None,
            ..EngineConfig::default()
        });
        let ds = dataset();
        let response = engine.submit(ConsensusRequest::new(
            ds.clone(),
            [
                mani_core::MethodKind::FairBorda,
                mani_core::MethodKind::FairCopeland,
            ],
            FairnessThresholds::uniform(0.3),
        ));
        let table = response_table(&response, &attribute_labels(ds.db()));
        assert_eq!(table.len(), 2);
        let text = table.render();
        assert!(text.contains("Fair-Borda"));
        assert!(text.contains("ARP_Gender"));
    }

    #[test]
    fn audit_table_lists_groups_and_intersection() {
        let ds = dataset();
        let groups = GroupIndex::new(ds.db());
        let audit = FairnessAudit::new("base-0", &ds.profile().rankings()[0], ds.db(), &groups);
        let table = audit_table(&audit);
        assert!(table.len() >= 2);
        let text = table.render();
        assert!(text.contains("Gender"));
    }

    #[test]
    fn method_kind_name_is_used_in_rows() {
        assert_eq!(mani_core::MethodKind::FairBorda.name(), "Fair-Borda");
    }
}
