//! Named, shareable consensus datasets: a candidate database plus a profile of
//! base rankings, wrapped in [`std::sync::Arc`] so worker threads can borrow
//! them without copies.

use std::hash::{DefaultHasher, Hash, Hasher};
use std::sync::Arc;

use mani_ranking::{CandidateDb, RankingProfile};

use crate::error::EngineError;

/// One consensus-ranking workload: candidates (with protected attributes) and
/// the base rankings ranked over them.
#[derive(Debug, Clone)]
pub struct EngineDataset {
    name: String,
    db: Arc<CandidateDb>,
    profile: Arc<RankingProfile>,
}

impl EngineDataset {
    /// Bundles a database and profile under a display name, validating that
    /// they cover the same candidates.
    pub fn new(
        name: impl Into<String>,
        db: CandidateDb,
        profile: RankingProfile,
    ) -> Result<Self, EngineError> {
        Self::from_arcs(name, Arc::new(db), Arc::new(profile))
    }

    /// Like [`EngineDataset::new`] but reuses existing shared handles.
    pub fn from_arcs(
        name: impl Into<String>,
        db: Arc<CandidateDb>,
        profile: Arc<RankingProfile>,
    ) -> Result<Self, EngineError> {
        if db.len() != profile.num_candidates() {
            return Err(EngineError::invalid(format!(
                "database has {} candidates but the profile ranks {}",
                db.len(),
                profile.num_candidates()
            )));
        }
        Ok(Self {
            name: name.into(),
            db,
            profile,
        })
    }

    /// Display name used in responses and reports.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The candidate database.
    pub fn db(&self) -> &Arc<CandidateDb> {
        &self.db
    }

    /// The base rankings.
    pub fn profile(&self) -> &Arc<RankingProfile> {
        &self.profile
    }

    /// Number of candidates `n`.
    pub fn num_candidates(&self) -> usize {
        self.db.len()
    }

    /// Number of base rankings `|R|`.
    pub fn num_rankings(&self) -> usize {
        self.profile.len()
    }

    /// Stable content fingerprint of `(db, profile)`, used as the precedence
    /// cache key: two datasets with identical candidates (names, attribute
    /// schema, attribute values) and identical base rankings collide on
    /// purpose, regardless of their display names.
    pub fn fingerprint(&self) -> u64 {
        let mut hasher = DefaultHasher::new();
        // Schema: attribute names and value domains in order.
        for (_, attribute) in self.db.schema().attributes() {
            attribute.name().hash(&mut hasher);
            for value in attribute.values() {
                value.hash(&mut hasher);
            }
        }
        // Candidates: names and value assignments in registration order.
        for (_, candidate) in self.db.candidates() {
            candidate.name().hash(&mut hasher);
            for value in candidate.values() {
                value.index().hash(&mut hasher);
            }
        }
        // Profile: every ranking's order.
        self.profile.num_candidates().hash(&mut hasher);
        for ranking in self.profile.rankings() {
            for candidate in ranking.iter() {
                candidate.0.hash(&mut hasher);
            }
            // Separate rankings so concatenations cannot collide.
            u32::MAX.hash(&mut hasher);
        }
        hasher.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mani_ranking::{CandidateDbBuilder, Ranking};

    fn db(n: usize) -> CandidateDb {
        let mut b = CandidateDbBuilder::new();
        let g = b.add_attribute("Gender", ["M", "W"]).unwrap();
        for i in 0..n {
            b.add_candidate(format!("c{i}"), [(g, i % 2)]).unwrap();
        }
        b.build().unwrap()
    }

    fn profile(n: usize, m: usize) -> RankingProfile {
        RankingProfile::new(vec![Ranking::identity(n); m]).unwrap()
    }

    #[test]
    fn validates_candidate_counts() {
        assert!(EngineDataset::new("ok", db(4), profile(4, 2)).is_ok());
        let err = EngineDataset::new("bad", db(4), profile(5, 2)).unwrap_err();
        assert!(matches!(err, EngineError::InvalidRequest(_)));
    }

    #[test]
    fn accessors_expose_shape() {
        let ds = EngineDataset::new("committee", db(6), profile(6, 3)).unwrap();
        assert_eq!(ds.name(), "committee");
        assert_eq!(ds.num_candidates(), 6);
        assert_eq!(ds.num_rankings(), 3);
    }

    #[test]
    fn fingerprint_ignores_name_but_sees_content() {
        let a = EngineDataset::new("a", db(6), profile(6, 3)).unwrap();
        let b = EngineDataset::new("b", db(6), profile(6, 3)).unwrap();
        assert_eq!(a.fingerprint(), b.fingerprint(), "names must not matter");

        let fewer_rankings = EngineDataset::new("a", db(6), profile(6, 2)).unwrap();
        assert_ne!(a.fingerprint(), fewer_rankings.fingerprint());

        let reversed = RankingProfile::new(vec![
            Ranking::identity(6).reversed(),
            Ranking::identity(6),
            Ranking::identity(6),
        ])
        .unwrap();
        let different_order = EngineDataset::new("a", db(6), reversed).unwrap();
        assert_ne!(a.fingerprint(), different_order.fingerprint());
    }
}
