//! The engine's typed job API: [`ConsensusRequest`] in, [`ConsensusResponse`]
//! out.

use std::sync::Arc;
use std::time::Duration;

use mani_core::{MethodKind, MfcrOutcome};
use mani_fairness::FairnessThresholds;

use crate::dataset::EngineDataset;
use crate::error::EngineError;

/// One consensus job: run a set of MFCR methods over one dataset under one set
/// of fairness thresholds.
#[derive(Debug, Clone)]
pub struct ConsensusRequest {
    /// The workload (shared; cheap to clone across requests).
    pub dataset: Arc<EngineDataset>,
    /// Methods to run, in the order results should be reported.
    pub methods: Vec<MethodKind>,
    /// Fairness thresholds Δ applied to every method.
    pub thresholds: FairnessThresholds,
    /// Branch-and-bound node budget for the exact methods (Fair-Kemeny,
    /// Kemeny, Kemeny-Weighted); `None` uses each solver's default.
    pub budget: Option<u64>,
}

impl ConsensusRequest {
    /// Creates a request running `methods` over `dataset`.
    pub fn new(
        dataset: Arc<EngineDataset>,
        methods: impl IntoIterator<Item = MethodKind>,
        thresholds: FairnessThresholds,
    ) -> Self {
        Self {
            dataset,
            methods: methods.into_iter().collect(),
            thresholds,
            budget: None,
        }
    }

    /// Sets the exact-solver node budget.
    pub fn with_budget(mut self, max_nodes: u64) -> Self {
        self.budget = Some(max_nodes);
        self
    }

    /// Validates the request shape (at least one method, no duplicates).
    pub fn validate(&self) -> Result<(), EngineError> {
        if self.methods.is_empty() {
            return Err(EngineError::invalid(format!(
                "request for dataset `{}` lists no methods",
                self.dataset.name()
            )));
        }
        for (i, kind) in self.methods.iter().enumerate() {
            if self.methods[..i].contains(kind) {
                return Err(EngineError::invalid(format!(
                    "method `{}` listed twice for dataset `{}`",
                    kind.name(),
                    self.dataset.name()
                )));
            }
        }
        Ok(())
    }
}

/// The outcome of one method within a request, plus its timing.
#[derive(Debug)]
pub struct MethodResult {
    /// Which method ran.
    pub method: MethodKind,
    /// The consensus ranking with its full criteria report (ARP per attribute,
    /// IRP, violations, PD loss, correction swaps, optimality flag).
    pub outcome: MfcrOutcome,
    /// Wall-clock time spent inside the method's `solve`.
    pub duration: Duration,
    /// Whether the precedence matrix came out of the shared cache.
    pub cache_hit: bool,
}

/// Everything the engine produced for one [`ConsensusRequest`].
///
/// `results` is index-aligned with the request's `methods` list, regardless of
/// the order worker threads finished in.
#[derive(Debug)]
pub struct ConsensusResponse {
    /// Name of the dataset the request ran over.
    pub dataset: String,
    /// One result per requested method, in request order. For a request that
    /// failed validation every slot holds the validation error (minimum one
    /// slot, so an empty method list still surfaces its error).
    pub results: Vec<Result<MethodResult, EngineError>>,
    /// Sum of all method solve times (CPU-side work; the batch's wall-clock
    /// time is lower when methods ran in parallel).
    pub total_solve_time: Duration,
}

impl ConsensusResponse {
    /// The outcome for a specific method, if it ran successfully.
    pub fn outcome(&self, method: MethodKind) -> Option<&MfcrOutcome> {
        self.results.iter().flatten().find_map(|r| {
            if r.method == method {
                Some(&r.outcome)
            } else {
                None
            }
        })
    }

    /// True when every requested method produced an outcome.
    pub fn is_complete(&self) -> bool {
        self.results.iter().all(Result::is_ok)
    }

    /// Iterates over the successful results in request order.
    pub fn successes(&self) -> impl Iterator<Item = &MethodResult> {
        self.results.iter().flatten()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mani_ranking::{CandidateDbBuilder, Ranking, RankingProfile};

    fn dataset() -> Arc<EngineDataset> {
        let mut b = CandidateDbBuilder::new();
        let g = b.add_attribute("G", ["x", "y"]).unwrap();
        for i in 0..4 {
            b.add_candidate(format!("c{i}"), [(g, i % 2)]).unwrap();
        }
        let db = b.build().unwrap();
        let profile = RankingProfile::new(vec![Ranking::identity(4)]).unwrap();
        Arc::new(EngineDataset::new("d", db, profile).unwrap())
    }

    #[test]
    fn validate_rejects_empty_and_duplicate_methods() {
        let ds = dataset();
        let empty = ConsensusRequest::new(ds.clone(), [], FairnessThresholds::uniform(0.2));
        assert!(empty.validate().is_err());

        let duplicated = ConsensusRequest::new(
            ds.clone(),
            [MethodKind::FairBorda, MethodKind::FairBorda],
            FairnessThresholds::uniform(0.2),
        );
        assert!(duplicated.validate().is_err());

        let ok = ConsensusRequest::new(
            ds,
            [MethodKind::FairBorda, MethodKind::FairCopeland],
            FairnessThresholds::uniform(0.2),
        )
        .with_budget(1000);
        assert!(ok.validate().is_ok());
        assert_eq!(ok.budget, Some(1000));
    }
}
