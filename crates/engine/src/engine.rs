//! The consensus engine: fans requests out across a worker pool, shares
//! per-dataset precedence matrices through the [`PrecedenceCache`], and joins
//! results back in deterministic request order.
//!
//! Two submission styles share one execution path:
//!
//! * **Blocking** — [`ConsensusEngine::submit`] / [`ConsensusEngine::submit_batch`]
//!   join the batch and return completed responses.
//! * **Non-blocking** — [`ConsensusEngine::submit_async`] /
//!   [`ConsensusEngine::submit_batch_async`] return a [`JobHandle`] immediately.
//!   Async submissions pass through a bounded queue
//!   ([`EngineConfig::queue_depth`]); when the queue is full the engine rejects
//!   the request with [`EngineError::Overloaded`] instead of growing without
//!   bound, which is the backpressure signal the HTTP front-end turns into
//!   `429 Too Many Requests`.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use mani_core::{MethodKind, MfcrContext};
use mani_fairness::FairnessThresholds;
use mani_obs::TraceTimeline;
use mani_ranking::Parallelism;

use crate::batch::{BatchCounters, BatchHandle};
use crate::cache::PrecedenceCache;
use crate::dataset::EngineDataset;
use crate::error::EngineError;
use crate::jobs::{JobHandle, JobId, JobState};
use crate::pool::{default_threads, WorkerPool};
use crate::request::{ConsensusRequest, ConsensusResponse, MethodResult};

/// Queue depth used when [`EngineConfig::queue_depth`] is `0`.
pub const DEFAULT_QUEUE_DEPTH: usize = 256;

/// Engine construction parameters.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Worker thread count; `0` means one per available core.
    pub threads: usize,
    /// Node budget applied to exact methods when a request does not set one.
    pub default_budget: Option<u64>,
    /// Maximum number of async jobs submitted but not yet completed before
    /// [`ConsensusEngine::submit_async`] starts rejecting with
    /// [`EngineError::Overloaded`]; `0` means [`DEFAULT_QUEUE_DEPTH`].
    /// Blocking submissions are not queued and do not count against the depth.
    pub queue_depth: usize,
    /// Kernel-level threads *within* one method solve (sharded matrix builds,
    /// blocked Schulze, subtree-parallel branch and bound); `0` means one per
    /// available core, `1` — the default — keeps kernels serial. Composes
    /// with `threads`: batch parallelism spreads requests, kernel parallelism
    /// accelerates each large request.
    ///
    /// Kernel fan-out is **opt-in** for two reasons: completed solves are
    /// bit-identical but *anytime* exact solves (node budget exhausted) are
    /// not, because subtree workers race the shared budget — the serial
    /// default keeps default engine results reproducible run-to-run; and
    /// `threads × kernel_threads` can oversubscribe cores under a batch of
    /// concurrently large requests, which an operator should choose
    /// deliberately.
    pub kernel_threads: usize,
    /// Candidate count below which kernels stay serial regardless of
    /// `kernel_threads` (small solves finish faster than threads spawn);
    /// `0` means the default threshold
    /// ([`mani_ranking::parallel::DEFAULT_MIN_CANDIDATES`]).
    pub kernel_min_candidates: usize,
    /// Floyd–Warshall tile size for the blocked Schulze kernel; `0` — the
    /// default — picks automatically ([`mani_ranking::parallel::DEFAULT_FW_TILE`]
    /// at [`mani_ranking::parallel::FW_TILE_MIN_N`] candidates and above,
    /// untiled below). Results are bit-identical for every tile size; this
    /// only tunes cache behaviour.
    pub kernel_tile_size: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        Self {
            threads: 0,
            default_budget: None,
            queue_depth: 0,
            kernel_threads: 1,
            kernel_min_candidates: 0,
            kernel_tile_size: 0,
        }
    }
}

impl EngineConfig {
    /// The kernel [`Parallelism`] this config resolves to (`kernel_threads`
    /// of `0` means one per available core).
    pub fn kernel_parallelism(&self) -> Parallelism {
        let parallelism = match self.kernel_threads {
            0 => Parallelism::auto(),
            threads => Parallelism::new(threads),
        };
        let parallelism = match self.kernel_min_candidates {
            0 => parallelism,
            min => parallelism.with_min_candidates(min),
        };
        match self.kernel_tile_size {
            0 => parallelism,
            tile => parallelism.with_tile_size(tile),
        }
    }
}

/// Submission-queue counters for one engine (see [`ConsensusEngine::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineStats {
    /// Configured bound on concurrently in-flight async jobs.
    pub queue_depth: usize,
    /// Async jobs submitted but not yet completed.
    pub in_flight: usize,
    /// Async jobs accepted since the engine was created.
    pub submitted: u64,
    /// Async jobs completed since the engine was created.
    pub completed: u64,
    /// Async jobs rejected with [`EngineError::Overloaded`].
    pub rejected: u64,
    /// Wall-clock nanoseconds spent building precedence matrices and group
    /// indexes (cache misses only — replays cost nothing here).
    pub matrix_build_ns: u64,
    /// Rankings folded into warm precedence matrices by delta derivation
    /// (dataset edits that skipped the full rebuild).
    pub delta_appends: u64,
    /// Rankings folded out of warm precedence matrices by delta derivation.
    pub delta_retracts: u64,
    /// Dataset-edit derivations that fell back to a full matrix rebuild.
    pub delta_rebuild_fallbacks: u64,
    /// Wall-clock nanoseconds spent inside method solves, summed across all
    /// workers (CPU-side view of where engine time goes).
    pub solve_ns: u64,
    /// Branch-and-bound nodes expanded by exact methods across all solves.
    pub nodes_expanded: u64,
    /// Streaming batches opened via
    /// [`ConsensusEngine::submit_batch_streaming`].
    pub batches_opened: u64,
    /// Streaming batches whose every completion was yielded to the consumer.
    pub batches_drained: u64,
    /// Per-request completions yielded across all streaming batches.
    pub batch_results_yielded: u64,
    /// Worker-pool tasks waiting in the channel, not yet picked up.
    pub pool_queued: usize,
    /// Worker-pool threads currently executing a task.
    pub pool_busy: usize,
    /// Worker-pool tasks finished since the engine was created.
    pub pool_tasks_executed: u64,
    /// Blocked (tiled) Floyd–Warshall solves, process-wide (the tiled kernel
    /// operates on borrowed buffers, so its counters are shared by every
    /// engine in the process).
    pub fw_blocked_solves: u64,
    /// Tile relaxations performed by blocked Floyd–Warshall solves,
    /// process-wide (`⌈n / tile⌉³` per solve).
    pub fw_tiles_relaxed: u64,
    /// Candidate-pair (row/column-range) shard tasks spawned by matrix build
    /// and scoring kernels, process-wide.
    pub pair_shard_tasks: u64,
    /// Ranking-shard tasks spawned by matrix build kernels, process-wide.
    pub ranking_shard_tasks: u64,
}

/// Counters shared between the engine and its in-flight job collectors.
#[derive(Debug, Default)]
struct AsyncCounters {
    in_flight: AtomicUsize,
    submitted: AtomicU64,
    completed: AtomicU64,
    rejected: AtomicU64,
}

/// Kernel timing counters shared with every solve task (matrix-build time
/// lives in [`crate::CacheStats::build_ns`]).
#[derive(Debug, Default)]
struct KernelCounters {
    solve_ns: AtomicU64,
    nodes_expanded: AtomicU64,
}

impl AsyncCounters {
    /// Marks one job finished: bumps `completed`, releases its queue slot.
    fn finish_one(&self) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        self.in_flight.fetch_sub(1, Ordering::Release);
    }
}

/// A multi-threaded executor for MFCR consensus requests.
///
/// The engine owns a [`WorkerPool`] and a [`PrecedenceCache`]; submitting a
/// batch fans every `(request, method)` pair out as one task. All methods of
/// all requests that share a dataset reuse one precedence matrix and one group
/// index, so a batch over `d` datasets builds exactly `d` matrices however
/// many methods run.
#[derive(Debug)]
pub struct ConsensusEngine {
    pool: WorkerPool,
    cache: Arc<PrecedenceCache>,
    config: EngineConfig,
    queue_depth: usize,
    kernel: Parallelism,
    next_job_id: AtomicU64,
    counters: Arc<AsyncCounters>,
    kernel_counters: Arc<KernelCounters>,
    batch_counters: Arc<BatchCounters>,
}

impl Default for ConsensusEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl ConsensusEngine {
    /// Engine with default configuration (one worker per core).
    pub fn new() -> Self {
        Self::with_config(EngineConfig::default())
    }

    /// Engine with explicit configuration.
    pub fn with_config(config: EngineConfig) -> Self {
        let threads = if config.threads == 0 {
            default_threads()
        } else {
            config.threads
        };
        let queue_depth = if config.queue_depth == 0 {
            DEFAULT_QUEUE_DEPTH
        } else {
            config.queue_depth
        };
        let kernel = config.kernel_parallelism();
        Self {
            pool: WorkerPool::new(threads),
            cache: Arc::new(PrecedenceCache::new()),
            config,
            queue_depth,
            kernel,
            next_job_id: AtomicU64::new(1),
            counters: Arc::new(AsyncCounters::default()),
            kernel_counters: Arc::new(KernelCounters::default()),
            batch_counters: Arc::new(BatchCounters::default()),
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.pool.num_threads()
    }

    /// The kernel-parallelism budget applied to each method solve.
    pub fn kernel_parallelism(&self) -> Parallelism {
        self.kernel
    }

    /// The resolved bound on concurrently in-flight async jobs.
    pub fn queue_depth(&self) -> usize {
        self.queue_depth
    }

    /// The shared precedence cache (inspect [`crate::CacheStats`] here).
    pub fn cache(&self) -> &PrecedenceCache {
        &self.cache
    }

    /// Current submission-queue and kernel-timing counters.
    pub fn stats(&self) -> EngineStats {
        let pool = self.pool.stats();
        let kernels = mani_ranking::kernel_counter_snapshot();
        let cache = self.cache.stats();
        EngineStats {
            queue_depth: self.queue_depth,
            in_flight: self.counters.in_flight.load(Ordering::Acquire),
            submitted: self.counters.submitted.load(Ordering::Relaxed),
            completed: self.counters.completed.load(Ordering::Relaxed),
            rejected: self.counters.rejected.load(Ordering::Relaxed),
            matrix_build_ns: cache.build_ns,
            delta_appends: cache.delta_appends,
            delta_retracts: cache.delta_retracts,
            delta_rebuild_fallbacks: cache.delta_rebuild_fallbacks,
            solve_ns: self.kernel_counters.solve_ns.load(Ordering::Relaxed),
            nodes_expanded: self.kernel_counters.nodes_expanded.load(Ordering::Relaxed),
            batches_opened: self.batch_counters.opened.load(Ordering::Relaxed),
            batches_drained: self.batch_counters.drained.load(Ordering::Relaxed),
            batch_results_yielded: self.batch_counters.results_yielded.load(Ordering::Relaxed),
            pool_queued: pool.queued,
            pool_busy: pool.busy,
            pool_tasks_executed: pool.executed,
            fw_blocked_solves: kernels.fw_blocked_solves,
            fw_tiles_relaxed: kernels.fw_tiles_relaxed,
            pair_shard_tasks: kernels.pair_shard_tasks,
            ranking_shard_tasks: kernels.ranking_shard_tasks,
        }
    }

    /// Runs one request (a batch of size one), blocking until it completes.
    pub fn submit(&self, request: ConsensusRequest) -> ConsensusResponse {
        self.submit_batch(vec![request])
            .into_iter()
            .next()
            .expect("batch of one yields one response")
    }

    /// Runs a batch of requests across the worker pool and returns one
    /// response per request, in request order, with per-method results in each
    /// request's method order. Blocks until the whole batch completes.
    pub fn submit_batch(&self, requests: Vec<ConsensusRequest>) -> Vec<ConsensusResponse> {
        // Phase 1: warm the cache — one build task per distinct dataset,
        // shared between the pool and this thread via `run_parts`. Method
        // tasks then always hit.
        let mut seen = std::collections::HashSet::new();
        let warm_tasks: Vec<_> = requests
            .iter()
            .filter(|r| seen.insert(r.dataset.fingerprint()))
            .map(|r| {
                let cache = Arc::clone(&self.cache);
                let dataset = Arc::clone(&r.dataset);
                let kernel = self.kernel;
                move || {
                    cache.get_or_build_with(&dataset, &kernel);
                }
            })
            .collect();
        self.pool.run_parts(warm_tasks);

        // Phase 2: fan out one task per (request, method) pair.
        let mut shapes = Vec::with_capacity(requests.len());
        let mut tasks: Vec<Box<dyn FnOnce() -> Result<MethodResult, EngineError> + Send>> =
            Vec::new();
        for request in requests {
            let validation = request.validate();
            shapes.push((
                request.dataset.name().to_string(),
                request.methods.len(),
                validation.err(),
            ));
            if shapes.last().expect("just pushed").2.is_some() {
                continue;
            }
            let budget = request.budget.or(self.config.default_budget);
            for kind in &request.methods {
                let kind = *kind;
                let dataset = Arc::clone(&request.dataset);
                let thresholds = request.thresholds.clone();
                let cache = Arc::clone(&self.cache);
                let kernel = self.kernel;
                let kernel_counters = Arc::clone(&self.kernel_counters);
                tasks.push(Box::new(move || {
                    solve_one(
                        &cache,
                        &dataset,
                        thresholds,
                        kind,
                        budget,
                        kernel,
                        &kernel_counters,
                        None,
                    )
                }));
            }
        }
        let mut results = self.pool.run_batch(tasks).into_iter();

        // Phase 3: deterministic join back into per-request responses.
        shapes
            .into_iter()
            .map(|(dataset, method_count, validation_error)| {
                if let Some(error) = validation_error {
                    return error_response(dataset, method_count, error);
                }
                assemble_response(dataset, results.by_ref().take(method_count).collect())
            })
            .collect()
    }

    /// Submits one request without blocking and returns a [`JobHandle`] that
    /// can be polled or waited on.
    ///
    /// The handle's response is bit-identical to what [`ConsensusEngine::submit`]
    /// would return for the same request. Fails with [`EngineError::Overloaded`]
    /// when [`EngineConfig::queue_depth`] jobs are already in flight.
    pub fn submit_async(&self, request: ConsensusRequest) -> Result<JobHandle, EngineError> {
        self.reserve(1)?;
        Ok(self.spawn_job(request))
    }

    /// Submits several requests without blocking, all or nothing: when the
    /// queue cannot absorb the whole batch, no job is enqueued and
    /// [`EngineError::Overloaded`] is returned. Handles are in request order.
    pub fn submit_batch_async(
        &self,
        requests: Vec<ConsensusRequest>,
    ) -> Result<Vec<JobHandle>, EngineError> {
        self.reserve(requests.len())?;
        Ok(requests
            .into_iter()
            .map(|request| self.spawn_job(request))
            .collect())
    }

    /// Submits a batch without blocking and returns a [`BatchHandle`] that
    /// yields each response in **as-completed order** — the streaming flavour
    /// of [`ConsensusEngine::submit_batch`]. Per-response contents are
    /// bit-identical to the blocking batch; only delivery order differs
    /// ([`crate::BatchItem::index`] recovers request order).
    ///
    /// Admission is all-or-nothing like
    /// [`ConsensusEngine::submit_batch_async`]: a queue that cannot absorb the
    /// whole batch rejects it with [`EngineError::Overloaded`].
    pub fn submit_batch_streaming(
        &self,
        requests: Vec<ConsensusRequest>,
    ) -> Result<BatchHandle, EngineError> {
        let handles = self.submit_batch_async(requests)?;
        Ok(BatchHandle::with_counters(
            handles,
            Some(Arc::clone(&self.batch_counters)),
        ))
    }

    /// Reserves `slots` queue places or rejects with [`EngineError::Overloaded`].
    fn reserve(&self, slots: usize) -> Result<(), EngineError> {
        let mut current = self.counters.in_flight.load(Ordering::Acquire);
        loop {
            if current + slots > self.queue_depth {
                self.counters
                    .rejected
                    .fetch_add(slots as u64, Ordering::Relaxed);
                return Err(EngineError::Overloaded {
                    in_flight: current,
                    queue_depth: self.queue_depth,
                });
            }
            match self.counters.in_flight.compare_exchange_weak(
                current,
                current + slots,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return Ok(()),
                Err(actual) => current = actual,
            }
        }
    }

    /// Fans one reserved request out as method tasks and returns its handle.
    fn spawn_job(&self, request: ConsensusRequest) -> JobHandle {
        let id = JobId::from_raw(self.next_job_id.fetch_add(1, Ordering::Relaxed));
        let state = Arc::new(JobState::new());
        self.counters.submitted.fetch_add(1, Ordering::Relaxed);

        if let Err(error) = request.validate() {
            // Invalid requests complete immediately (same response shape as the
            // blocking path) without occupying a worker.
            self.counters.finish_one();
            state.complete(error_response(
                request.dataset.name().to_string(),
                request.methods.len(),
                error,
            ));
            return JobHandle::new(id, state);
        }

        let budget = request.budget.or(self.config.default_budget);
        let method_count = request.methods.len();
        let collector = Arc::new(JobCollector {
            dataset: request.dataset.name().to_string(),
            slots: Mutex::new((0..method_count).map(|_| None).collect()),
            remaining: AtomicUsize::new(method_count),
            state: Arc::clone(&state),
            counters: Arc::clone(&self.counters),
        });
        for (index, kind) in request.methods.iter().copied().enumerate() {
            let dataset = Arc::clone(&request.dataset);
            let thresholds = request.thresholds.clone();
            let cache = Arc::clone(&self.cache);
            let kernel = self.kernel;
            let kernel_counters = Arc::clone(&self.kernel_counters);
            let collector = Arc::clone(&collector);
            let trace = Arc::clone(state.trace());
            self.pool.execute(Box::new(move || {
                collector.state.mark_running();
                // A panicking solver must not leak the job's queue slot: turn
                // the panic into an error result so the job still completes.
                let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    solve_one(
                        &cache,
                        &dataset,
                        thresholds,
                        kind,
                        budget,
                        kernel,
                        &kernel_counters,
                        Some(&trace),
                    )
                }))
                .unwrap_or_else(|_| {
                    Err(EngineError::invalid(format!(
                        "method `{}` panicked",
                        kind.name()
                    )))
                });
                collector.finish(index, result);
            }));
        }
        JobHandle::new(id, state)
    }
}

/// Per-job result collector: method tasks deposit into `slots`; the task that
/// drops `remaining` to zero assembles the response, publishes it through the
/// job's [`JobState`], and releases the job's queue slot.
#[derive(Debug)]
struct JobCollector {
    dataset: String,
    slots: Mutex<Vec<Option<Result<MethodResult, EngineError>>>>,
    remaining: AtomicUsize,
    state: Arc<JobState>,
    counters: Arc<AsyncCounters>,
}

impl JobCollector {
    fn finish(&self, index: usize, result: Result<MethodResult, EngineError>) {
        {
            let mut slots = self.slots.lock().expect("job slots lock poisoned");
            slots[index] = Some(result);
        }
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            let slots = std::mem::take(&mut *self.slots.lock().expect("job slots lock poisoned"));
            let results = slots
                .into_iter()
                .map(|slot| slot.expect("every method task deposited a result"))
                .collect();
            // Release the queue slot *before* publishing: a waiter observing
            // the completed response must also observe the updated counters.
            self.counters.finish_one();
            self.state
                .complete(assemble_response(self.dataset.clone(), results));
        }
    }
}

/// Runs one method over one dataset against the shared cache — the single
/// execution path behind both blocking and async submission. When `trace` is
/// set (async jobs), the cache probe is recorded as `cache_lookup` (hit) or
/// `matrix_build` (miss) and the method solve as `solve`.
#[allow(clippy::too_many_arguments)] // internal seam: every site is in this file
fn solve_one(
    cache: &PrecedenceCache,
    dataset: &EngineDataset,
    thresholds: FairnessThresholds,
    kind: MethodKind,
    budget: Option<u64>,
    kernel: Parallelism,
    kernel_counters: &KernelCounters,
    trace: Option<&TraceTimeline>,
) -> Result<MethodResult, EngineError> {
    let lookup_started = Instant::now();
    let (artifacts, cache_hit) = cache.get_or_build_with(dataset, &kernel);
    if let Some(trace) = trace {
        let phase = if cache_hit {
            "cache_lookup"
        } else {
            "matrix_build"
        };
        trace.record(phase, lookup_started, lookup_started.elapsed());
    }
    let ctx = MfcrContext::new(
        dataset.db(),
        &artifacts.groups,
        dataset.profile(),
        thresholds,
    )
    .with_precedence(&artifacts.precedence)
    .with_parallelism(kernel);
    let method = match budget {
        Some(nodes) => kind.instantiate_with_nodes(nodes),
        None => kind.instantiate(),
    };
    let started = Instant::now();
    let outcome = method.solve(&ctx);
    let duration = started.elapsed();
    if let Some(trace) = trace {
        trace.record("solve", started, duration);
    }
    let outcome = outcome?;
    kernel_counters
        .solve_ns
        .fetch_add(duration.as_nanos() as u64, Ordering::Relaxed);
    kernel_counters
        .nodes_expanded
        .fetch_add(outcome.nodes_explored, Ordering::Relaxed);
    Ok(MethodResult {
        method: kind,
        outcome,
        duration,
        cache_hit,
    })
}

/// Response for a request that failed validation: every slot carries the
/// validation error (minimum one slot, so an empty method list still surfaces
/// its error).
fn error_response(dataset: String, method_count: usize, error: EngineError) -> ConsensusResponse {
    let message = match error {
        EngineError::InvalidRequest(message) => message,
        other => other.to_string(),
    };
    let results = (0..method_count.max(1))
        .map(|_| Err(EngineError::InvalidRequest(message.clone())))
        .collect();
    ConsensusResponse {
        dataset,
        results,
        total_solve_time: Duration::ZERO,
    }
}

/// Bundles per-method results into a response, totalling the solve time.
fn assemble_response(
    dataset: String,
    results: Vec<Result<MethodResult, EngineError>>,
) -> ConsensusResponse {
    let total_solve_time = results
        .iter()
        .flatten()
        .map(|r| r.duration)
        .sum::<Duration>();
    ConsensusResponse {
        dataset,
        results,
        total_solve_time,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::EngineDataset;
    use crate::jobs::JobStatus;
    use mani_core::MethodKind;
    use mani_fairness::FairnessThresholds;
    use mani_ranking::{CandidateDbBuilder, Ranking, RankingProfile};

    fn dataset(n: usize, seed: u64) -> Arc<EngineDataset> {
        let mut b = CandidateDbBuilder::new();
        let g = b.add_attribute("G", ["x", "y"]).unwrap();
        for i in 0..n {
            b.add_candidate(format!("c{i}"), [(g, i % 2)]).unwrap();
        }
        let db = b.build().unwrap();
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(seed);
        let rankings: Vec<Ranking> = (0..6).map(|_| Ranking::random(n, &mut rng)).collect();
        let profile = RankingProfile::new(rankings).unwrap();
        Arc::new(EngineDataset::new(format!("ds-{n}-{seed}"), db, profile).unwrap())
    }

    fn config(threads: usize) -> EngineConfig {
        EngineConfig {
            threads,
            ..EngineConfig::default()
        }
    }

    #[test]
    fn submit_runs_methods_in_request_order() {
        let engine = ConsensusEngine::with_config(config(3));
        let methods = [
            MethodKind::FairBorda,
            MethodKind::FairCopeland,
            MethodKind::FairSchulze,
        ];
        let response = engine.submit(ConsensusRequest::new(
            dataset(10, 1),
            methods,
            FairnessThresholds::uniform(0.3),
        ));
        assert!(response.is_complete());
        let reported: Vec<MethodKind> = response.successes().map(|r| r.method).collect();
        assert_eq!(reported, methods);
        assert!(response.outcome(MethodKind::FairBorda).is_some());
        assert!(response.outcome(MethodKind::Kemeny).is_none());
    }

    #[test]
    fn batch_builds_each_dataset_once() {
        let engine = ConsensusEngine::with_config(config(4));
        let a = dataset(10, 1);
        let b = dataset(12, 2);
        let methods = [
            MethodKind::FairBorda,
            MethodKind::FairCopeland,
            MethodKind::FairSchulze,
            MethodKind::PickFairestPerm,
        ];
        let responses = engine.submit_batch(vec![
            ConsensusRequest::new(a.clone(), methods, FairnessThresholds::uniform(0.25)),
            ConsensusRequest::new(b, methods, FairnessThresholds::uniform(0.25)),
            // Same dataset again under another request: still no extra build.
            ConsensusRequest::new(a, methods, FairnessThresholds::uniform(0.1)),
        ]);
        assert_eq!(responses.len(), 3);
        for response in &responses {
            assert!(response.is_complete(), "{:?}", response.results);
        }
        let stats = engine.cache().stats();
        assert_eq!(stats.builds, 2, "two distinct datasets, two builds");
        // Every method task hit the warmed cache.
        assert!(responses
            .iter()
            .flat_map(ConsensusResponse::successes)
            .all(|r| r.cache_hit));
    }

    #[test]
    fn invalid_request_yields_an_error_response_without_blocking_others() {
        let engine = ConsensusEngine::with_config(config(2));
        let responses = engine.submit_batch(vec![
            ConsensusRequest::new(dataset(8, 3), [], FairnessThresholds::uniform(0.2)),
            ConsensusRequest::new(
                dataset(8, 4),
                [MethodKind::FairBorda],
                FairnessThresholds::uniform(0.2),
            ),
        ]);
        assert!(!responses[0].is_complete());
        assert!(matches!(
            responses[0].results[0],
            Err(EngineError::InvalidRequest(_))
        ));
        assert!(responses[1].is_complete());
    }

    #[test]
    fn default_budget_applies_to_exact_methods() {
        let engine = ConsensusEngine::with_config(EngineConfig {
            threads: 2,
            default_budget: Some(3),
            ..EngineConfig::default()
        });
        let response = engine.submit(ConsensusRequest::new(
            dataset(14, 5),
            [MethodKind::FairKemeny],
            FairnessThresholds::uniform(0.3),
        ));
        let outcome = response.outcome(MethodKind::FairKemeny).unwrap();
        assert!(
            !outcome.optimal,
            "a 3-node budget cannot close n = 14, so the result must be anytime"
        );
    }

    #[test]
    fn kernel_threads_do_not_change_results() {
        // Force kernel parallelism on even for these small datasets and check
        // every method result is bit-identical to the serial-kernel engine.
        let methods = [
            MethodKind::FairBorda,
            MethodKind::FairCopeland,
            MethodKind::FairSchulze,
            MethodKind::FairKemeny,
        ];
        let serial_engine = ConsensusEngine::with_config(EngineConfig {
            threads: 2,
            kernel_threads: 1,
            ..EngineConfig::default()
        });
        let baseline = serial_engine.submit(ConsensusRequest::new(
            dataset(12, 9),
            methods,
            FairnessThresholds::uniform(0.25),
        ));
        assert!(baseline.is_complete());
        for kernel_threads in [2usize, 8] {
            let engine = ConsensusEngine::with_config(EngineConfig {
                threads: 2,
                kernel_threads,
                kernel_min_candidates: 2,
                ..EngineConfig::default()
            });
            assert_eq!(engine.kernel_parallelism().max_threads(), kernel_threads);
            let response = engine.submit(ConsensusRequest::new(
                dataset(12, 9),
                methods,
                FairnessThresholds::uniform(0.25),
            ));
            assert!(response.is_complete());
            for (serial, parallel) in baseline.successes().zip(response.successes()) {
                assert_eq!(serial.method, parallel.method);
                assert_eq!(
                    serial.outcome.ranking,
                    parallel.outcome.ranking,
                    "{} changed under kernel_threads = {kernel_threads}",
                    serial.method.name()
                );
                assert_eq!(serial.outcome.pd_loss, parallel.outcome.pd_loss);
            }
        }
    }

    #[test]
    fn kernel_timing_counters_accumulate() {
        let engine = ConsensusEngine::with_config(config(2));
        let response = engine.submit(ConsensusRequest::new(
            dataset(12, 3),
            [MethodKind::FairBorda, MethodKind::FairKemeny],
            FairnessThresholds::uniform(0.3),
        ));
        assert!(response.is_complete());
        let stats = engine.stats();
        assert!(stats.matrix_build_ns > 0, "one matrix build must be timed");
        assert!(stats.solve_ns > 0, "method solves must be timed");
        assert!(
            stats.nodes_expanded > 0,
            "Fair-Kemeny must report expanded nodes"
        );
        let kemeny = response.outcome(MethodKind::FairKemeny).unwrap();
        assert!(kemeny.nodes_explored > 0);
        let borda = response.outcome(MethodKind::FairBorda).unwrap();
        assert_eq!(borda.nodes_explored, 0, "polynomial methods do not search");
    }

    #[test]
    fn async_submission_completes_and_counts() {
        let engine = ConsensusEngine::with_config(config(2));
        let handle = engine
            .submit_async(ConsensusRequest::new(
                dataset(10, 7),
                [MethodKind::FairBorda, MethodKind::FairCopeland],
                FairnessThresholds::uniform(0.2),
            ))
            .expect("queue is empty");
        assert_eq!(handle.id().as_u64(), 1);
        let response = handle.wait();
        assert!(response.is_complete());
        assert_eq!(handle.status(), JobStatus::Done);
        assert!(handle.try_poll().is_some());
        let stats = engine.stats();
        assert_eq!(stats.submitted, 1);
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.in_flight, 0);
        assert_eq!(stats.rejected, 0);
    }

    #[test]
    fn async_batch_over_queue_depth_is_rejected_atomically() {
        let engine = ConsensusEngine::with_config(EngineConfig {
            threads: 2,
            queue_depth: 2,
            ..EngineConfig::default()
        });
        let requests: Vec<ConsensusRequest> = (0..3)
            .map(|i| {
                ConsensusRequest::new(
                    dataset(8, 10 + i),
                    [MethodKind::FairBorda],
                    FairnessThresholds::uniform(0.2),
                )
            })
            .collect();
        let err = engine.submit_batch_async(requests).unwrap_err();
        assert!(matches!(
            err,
            EngineError::Overloaded {
                in_flight: 0,
                queue_depth: 2,
            }
        ));
        let stats = engine.stats();
        assert_eq!(stats.submitted, 0, "all-or-nothing: nothing was enqueued");
        assert_eq!(stats.rejected, 3);
        assert_eq!(stats.in_flight, 0);
    }

    #[test]
    fn async_job_traces_queue_wait_cache_and_solve_phases() {
        let engine = ConsensusEngine::with_config(config(2));
        let ds = dataset(10, 21);
        let first = engine
            .submit_async(ConsensusRequest::new(
                Arc::clone(&ds),
                [MethodKind::FairBorda],
                FairnessThresholds::uniform(0.2),
            ))
            .expect("queue is empty");
        first.wait();
        let phases: Vec<&str> = first.trace().snapshot().iter().map(|p| p.name).collect();
        assert!(phases.contains(&"queue_wait"), "{phases:?}");
        assert!(phases.contains(&"matrix_build"), "cold cache: {phases:?}");
        assert!(phases.contains(&"solve"), "{phases:?}");

        // Same dataset again: the probe is now a hit and traces as a lookup.
        let second = engine
            .submit_async(ConsensusRequest::new(
                ds,
                [MethodKind::FairBorda],
                FairnessThresholds::uniform(0.2),
            ))
            .expect("queue is empty");
        second.wait();
        let trace = second.trace();
        let phases = trace.snapshot();
        assert!(
            phases.iter().any(|p| p.name == "cache_lookup"),
            "{phases:?}"
        );
        // Phases are merged by name (each appears once) and, for this
        // single-method job, their durations fit inside the traced span.
        let mut names: Vec<&str> = phases.iter().map(|p| p.name).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), phases.len(), "duplicate phase: {phases:?}");
        let total: u64 = phases.iter().map(|p| p.duration_ns).sum();
        assert!(
            total <= trace.span_ns(),
            "sequential phases exceed span: {total} > {}",
            trace.span_ns()
        );
    }

    #[test]
    fn stats_expose_pool_saturation() {
        let engine = ConsensusEngine::with_config(config(2));
        engine.submit(ConsensusRequest::new(
            dataset(10, 22),
            [MethodKind::FairBorda, MethodKind::FairCopeland],
            FairnessThresholds::uniform(0.2),
        ));
        // Busy-guard drops may trail the batch join by an instant.
        let deadline = Instant::now() + Duration::from_secs(5);
        loop {
            let stats = engine.stats();
            if stats.pool_tasks_executed >= 2 && stats.pool_queued == 0 && stats.pool_busy == 0 {
                break;
            }
            assert!(Instant::now() < deadline, "pool stats stuck: {stats:?}");
            std::thread::yield_now();
        }
    }

    #[test]
    fn invalid_async_request_completes_immediately_with_error() {
        let engine = ConsensusEngine::with_config(config(1));
        let handle = engine
            .submit_async(ConsensusRequest::new(
                dataset(8, 3),
                [],
                FairnessThresholds::uniform(0.2),
            ))
            .expect("queue is empty");
        // No worker involvement: already done.
        let response = handle.try_poll().expect("validation errors are immediate");
        assert!(matches!(
            response.results[0],
            Err(EngineError::InvalidRequest(_))
        ));
        assert_eq!(engine.stats().in_flight, 0);
    }
}
