//! The batch consensus engine: fans requests out across a worker pool, shares
//! per-dataset precedence matrices through the [`PrecedenceCache`], and joins
//! results back in deterministic request order.

use std::sync::Arc;
use std::time::{Duration, Instant};

use mani_core::MfcrContext;

use crate::cache::PrecedenceCache;
use crate::error::EngineError;
use crate::pool::{default_threads, WorkerPool};
use crate::request::{ConsensusRequest, ConsensusResponse, MethodResult};

/// Engine construction parameters.
#[derive(Debug, Clone, Default)]
pub struct EngineConfig {
    /// Worker thread count; `0` means one per available core.
    pub threads: usize,
    /// Node budget applied to exact methods when a request does not set one.
    pub default_budget: Option<u64>,
}

/// A multi-threaded batch executor for MFCR consensus requests.
///
/// The engine owns a [`WorkerPool`] and a [`PrecedenceCache`]; submitting a
/// batch fans every `(request, method)` pair out as one task. All methods of
/// all requests that share a dataset reuse one precedence matrix and one group
/// index, so a batch over `d` datasets builds exactly `d` matrices however
/// many methods run.
#[derive(Debug)]
pub struct ConsensusEngine {
    pool: WorkerPool,
    cache: Arc<PrecedenceCache>,
    config: EngineConfig,
}

impl Default for ConsensusEngine {
    fn default() -> Self {
        Self::new()
    }
}

impl ConsensusEngine {
    /// Engine with default configuration (one worker per core).
    pub fn new() -> Self {
        Self::with_config(EngineConfig::default())
    }

    /// Engine with explicit configuration.
    pub fn with_config(config: EngineConfig) -> Self {
        let threads = if config.threads == 0 {
            default_threads()
        } else {
            config.threads
        };
        Self {
            pool: WorkerPool::new(threads),
            cache: Arc::new(PrecedenceCache::new()),
            config,
        }
    }

    /// Number of worker threads.
    pub fn threads(&self) -> usize {
        self.pool.num_threads()
    }

    /// The shared precedence cache (inspect [`crate::CacheStats`] here).
    pub fn cache(&self) -> &PrecedenceCache {
        &self.cache
    }

    /// Runs one request (a batch of size one).
    pub fn submit(&self, request: ConsensusRequest) -> ConsensusResponse {
        self.submit_batch(vec![request])
            .into_iter()
            .next()
            .expect("batch of one yields one response")
    }

    /// Runs a batch of requests across the worker pool and returns one
    /// response per request, in request order, with per-method results in each
    /// request's method order.
    pub fn submit_batch(&self, requests: Vec<ConsensusRequest>) -> Vec<ConsensusResponse> {
        // Phase 1: warm the cache — one build task per distinct dataset, in
        // parallel. Method tasks then always hit.
        let mut seen = std::collections::HashSet::new();
        let warm_tasks: Vec<_> = requests
            .iter()
            .filter(|r| seen.insert(r.dataset.fingerprint()))
            .map(|r| {
                let cache = Arc::clone(&self.cache);
                let dataset = Arc::clone(&r.dataset);
                move || {
                    cache.get_or_build(&dataset);
                }
            })
            .collect();
        self.pool.run_batch(warm_tasks);

        // Phase 2: fan out one task per (request, method) pair.
        let mut shapes = Vec::with_capacity(requests.len());
        let mut tasks: Vec<Box<dyn FnOnce() -> Result<MethodResult, EngineError> + Send>> =
            Vec::new();
        for request in requests {
            let validation = request.validate();
            shapes.push((
                request.dataset.name().to_string(),
                request.methods.len(),
                validation.err(),
            ));
            if shapes.last().expect("just pushed").2.is_some() {
                continue;
            }
            let budget = request.budget.or(self.config.default_budget);
            for kind in &request.methods {
                let kind = *kind;
                let dataset = Arc::clone(&request.dataset);
                let thresholds = request.thresholds.clone();
                let cache = Arc::clone(&self.cache);
                tasks.push(Box::new(move || {
                    let (artifacts, cache_hit) = cache.get_or_build(&dataset);
                    let ctx = MfcrContext::new(
                        dataset.db(),
                        &artifacts.groups,
                        dataset.profile(),
                        thresholds,
                    )
                    .with_precedence(&artifacts.precedence);
                    let method = match budget {
                        Some(nodes) => kind.instantiate_with_nodes(nodes),
                        None => kind.instantiate(),
                    };
                    let started = Instant::now();
                    let outcome = method.solve(&ctx)?;
                    Ok(MethodResult {
                        method: kind,
                        outcome,
                        duration: started.elapsed(),
                        cache_hit,
                    })
                }));
            }
        }
        let mut results = self.pool.run_batch(tasks).into_iter();

        // Phase 3: deterministic join back into per-request responses.
        shapes
            .into_iter()
            .map(|(dataset, method_count, validation_error)| {
                if let Some(error) = validation_error {
                    // Keep `results` index-aligned with the request's methods
                    // even on validation failure (minimum one slot so the
                    // error is visible for an empty method list).
                    let message = match error {
                        EngineError::InvalidRequest(message) => message,
                        other => other.to_string(),
                    };
                    let results = (0..method_count.max(1))
                        .map(|_| Err(EngineError::InvalidRequest(message.clone())))
                        .collect();
                    return ConsensusResponse {
                        dataset,
                        results,
                        total_solve_time: Duration::ZERO,
                    };
                }
                let results: Vec<Result<MethodResult, EngineError>> =
                    results.by_ref().take(method_count).collect();
                let total_solve_time = results
                    .iter()
                    .flatten()
                    .map(|r| r.duration)
                    .sum::<Duration>();
                ConsensusResponse {
                    dataset,
                    results,
                    total_solve_time,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::EngineDataset;
    use mani_core::MethodKind;
    use mani_fairness::FairnessThresholds;
    use mani_ranking::{CandidateDbBuilder, Ranking, RankingProfile};

    fn dataset(n: usize, seed: u64) -> Arc<EngineDataset> {
        let mut b = CandidateDbBuilder::new();
        let g = b.add_attribute("G", ["x", "y"]).unwrap();
        for i in 0..n {
            b.add_candidate(format!("c{i}"), [(g, i % 2)]).unwrap();
        }
        let db = b.build().unwrap();
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let mut rng = StdRng::seed_from_u64(seed);
        let rankings: Vec<Ranking> = (0..6).map(|_| Ranking::random(n, &mut rng)).collect();
        let profile = RankingProfile::new(rankings).unwrap();
        Arc::new(EngineDataset::new(format!("ds-{n}-{seed}"), db, profile).unwrap())
    }

    #[test]
    fn submit_runs_methods_in_request_order() {
        let engine = ConsensusEngine::with_config(EngineConfig {
            threads: 3,
            default_budget: None,
        });
        let methods = [
            MethodKind::FairBorda,
            MethodKind::FairCopeland,
            MethodKind::FairSchulze,
        ];
        let response = engine.submit(ConsensusRequest::new(
            dataset(10, 1),
            methods,
            FairnessThresholds::uniform(0.3),
        ));
        assert!(response.is_complete());
        let reported: Vec<MethodKind> = response.successes().map(|r| r.method).collect();
        assert_eq!(reported, methods);
        assert!(response.outcome(MethodKind::FairBorda).is_some());
        assert!(response.outcome(MethodKind::Kemeny).is_none());
    }

    #[test]
    fn batch_builds_each_dataset_once() {
        let engine = ConsensusEngine::with_config(EngineConfig {
            threads: 4,
            default_budget: None,
        });
        let a = dataset(10, 1);
        let b = dataset(12, 2);
        let methods = [
            MethodKind::FairBorda,
            MethodKind::FairCopeland,
            MethodKind::FairSchulze,
            MethodKind::PickFairestPerm,
        ];
        let responses = engine.submit_batch(vec![
            ConsensusRequest::new(a.clone(), methods, FairnessThresholds::uniform(0.25)),
            ConsensusRequest::new(b, methods, FairnessThresholds::uniform(0.25)),
            // Same dataset again under another request: still no extra build.
            ConsensusRequest::new(a, methods, FairnessThresholds::uniform(0.1)),
        ]);
        assert_eq!(responses.len(), 3);
        for response in &responses {
            assert!(response.is_complete(), "{:?}", response.results);
        }
        let stats = engine.cache().stats();
        assert_eq!(stats.builds, 2, "two distinct datasets, two builds");
        // Every method task hit the warmed cache.
        assert!(responses
            .iter()
            .flat_map(ConsensusResponse::successes)
            .all(|r| r.cache_hit));
    }

    #[test]
    fn invalid_request_yields_an_error_response_without_blocking_others() {
        let engine = ConsensusEngine::with_config(EngineConfig {
            threads: 2,
            default_budget: None,
        });
        let responses = engine.submit_batch(vec![
            ConsensusRequest::new(dataset(8, 3), [], FairnessThresholds::uniform(0.2)),
            ConsensusRequest::new(
                dataset(8, 4),
                [MethodKind::FairBorda],
                FairnessThresholds::uniform(0.2),
            ),
        ]);
        assert!(!responses[0].is_complete());
        assert!(matches!(
            responses[0].results[0],
            Err(EngineError::InvalidRequest(_))
        ));
        assert!(responses[1].is_complete());
    }

    #[test]
    fn default_budget_applies_to_exact_methods() {
        let engine = ConsensusEngine::with_config(EngineConfig {
            threads: 2,
            default_budget: Some(3),
        });
        let response = engine.submit(ConsensusRequest::new(
            dataset(14, 5),
            [MethodKind::FairKemeny],
            FairnessThresholds::uniform(0.3),
        ));
        let outcome = response.outcome(MethodKind::FairKemeny).unwrap();
        assert!(
            !outcome.optimal,
            "a 3-node budget cannot close n = 14, so the result must be anytime"
        );
    }
}
