//! Non-blocking job handles for asynchronously submitted consensus requests.
//!
//! [`crate::ConsensusEngine::submit_async`] returns a [`JobHandle`] immediately
//! instead of joining the batch: the caller can poll it ([`JobHandle::try_poll`]),
//! block on it ([`JobHandle::wait`] / [`JobHandle::wait_timeout`]), or stash it
//! in a registry keyed by [`JobId`] — which is exactly what the `mani-serve`
//! HTTP front-end does for its `GET /v1/jobs/{id}` endpoint.
//!
//! A job moves through three phases: **queued** (accepted, no worker has picked
//! up any of its method tasks yet), **running** (at least one method task
//! started), and **done** (every method task finished and the response was
//! assembled). Completed responses are shared as
//! [`std::sync::Arc`]`<`[`ConsensusResponse`]`>` so several pollers can observe
//! one result without copying it.

use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use mani_obs::TraceTimeline;

use crate::batch::BatchNotifier;
use crate::request::ConsensusResponse;

/// Identifier of an asynchronously submitted job, unique within one engine.
///
/// Ids are handed out in submission order starting at `1`; they are never
/// reused by the issuing engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(u64);

impl JobId {
    /// Creates a job id from its raw counter value.
    pub fn from_raw(raw: u64) -> Self {
        JobId(raw)
    }

    /// The raw counter value behind this id.
    pub fn as_u64(&self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job-{}", self.0)
    }
}

/// Lifecycle phase of an asynchronously submitted job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Accepted into the submission queue; no worker has started it yet.
    Queued,
    /// At least one of the job's method tasks is executing.
    Running,
    /// Every method task finished; the response is available.
    Done,
}

impl JobStatus {
    /// Lower-case label used by logs and the HTTP API (`"queued"`, `"running"`,
    /// `"done"`).
    pub fn label(&self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Done => "done",
        }
    }
}

#[derive(Debug)]
enum Phase {
    Queued,
    Running,
    Done(Arc<ConsensusResponse>),
}

/// One batch subscription: when the job completes, `notifier` learns that
/// slot `index` is ready (see [`crate::batch::BatchHandle`]).
#[derive(Debug)]
struct Watcher {
    index: usize,
    notifier: Arc<BatchNotifier>,
}

/// Everything guarded by the job's one mutex: the lifecycle phase plus the
/// batch watchers waiting on the completion transition. Keeping both under a
/// single lock makes subscribe-vs-complete race-free: a watcher either sees
/// `Done` and is notified immediately, or is registered before the transition
/// and notified by it — never neither.
#[derive(Debug)]
struct Inner {
    phase: Phase,
    watchers: Vec<Watcher>,
}

/// Shared completion state between the engine's worker tasks and the handle.
#[derive(Debug)]
pub(crate) struct JobState {
    inner: Mutex<Inner>,
    cond: Condvar,
    /// Phase timeline for the job, anchored at submission time. Workers
    /// record solver phases into it; `GET /v1/jobs/{id}/trace` renders it.
    trace: Arc<TraceTimeline>,
}

impl JobState {
    pub(crate) fn new() -> Self {
        Self {
            inner: Mutex::new(Inner {
                phase: Phase::Queued,
                watchers: Vec::new(),
            }),
            cond: Condvar::new(),
            trace: Arc::new(TraceTimeline::new()),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner> {
        self.inner.lock().expect("job phase lock poisoned")
    }

    /// The job's shared phase timeline.
    pub(crate) fn trace(&self) -> &Arc<TraceTimeline> {
        &self.trace
    }

    /// Marks the job running (first method task picked up). Idempotent; a
    /// completed job stays completed. The first transition closes the
    /// `queue_wait` phase — time from submission to the first worker pickup.
    pub(crate) fn mark_running(&self) {
        let mut inner = self.lock();
        if matches!(inner.phase, Phase::Queued) {
            inner.phase = Phase::Running;
            self.trace.record_since_origin("queue_wait");
        }
    }

    /// Publishes the finished response, wakes every waiter, and fires every
    /// registered batch watcher (outside the phase lock, so notifier locks
    /// never nest inside it).
    pub(crate) fn complete(&self, response: ConsensusResponse) {
        let watchers = {
            let mut inner = self.lock();
            inner.phase = Phase::Done(Arc::new(response));
            self.cond.notify_all();
            std::mem::take(&mut inner.watchers)
        };
        for watcher in watchers {
            watcher.notifier.notify(watcher.index);
        }
    }

    /// Subscribes a batch notifier to this job's completion transition: an
    /// already-completed job notifies immediately, anything else is notified
    /// by [`JobState::complete`]. No polling loop is involved either way.
    pub(crate) fn subscribe(&self, index: usize, notifier: &Arc<BatchNotifier>) {
        let done = {
            let mut inner = self.lock();
            match inner.phase {
                Phase::Done(_) => true,
                _ => {
                    inner.watchers.push(Watcher {
                        index,
                        notifier: Arc::clone(notifier),
                    });
                    false
                }
            }
        };
        if done {
            notifier.notify(index);
        }
    }
}

/// A non-blocking handle to one asynchronously submitted consensus request.
///
/// Cloning the handle is cheap; all clones observe the same job.
#[derive(Debug, Clone)]
pub struct JobHandle {
    id: JobId,
    state: Arc<JobState>,
}

impl JobHandle {
    pub(crate) fn new(id: JobId, state: Arc<JobState>) -> Self {
        Self { id, state }
    }

    /// The job's engine-unique identifier.
    pub fn id(&self) -> JobId {
        self.id
    }

    /// The job's phase timeline (`queue_wait`, `cache_lookup` /
    /// `matrix_build`, `solve`, …), shared with the workers executing it.
    pub fn trace(&self) -> Arc<TraceTimeline> {
        Arc::clone(&self.state.trace)
    }

    /// The job's current lifecycle phase.
    pub fn status(&self) -> JobStatus {
        match self.state.lock().phase {
            Phase::Queued => JobStatus::Queued,
            Phase::Running => JobStatus::Running,
            Phase::Done(_) => JobStatus::Done,
        }
    }

    /// Returns the response if the job already finished, without blocking.
    pub fn try_poll(&self) -> Option<Arc<ConsensusResponse>> {
        match self.state.lock().phase {
            Phase::Done(ref response) => Some(Arc::clone(response)),
            _ => None,
        }
    }

    /// Blocks until the job finishes and returns its response.
    pub fn wait(&self) -> Arc<ConsensusResponse> {
        let mut inner = self.state.lock();
        loop {
            if let Phase::Done(ref response) = inner.phase {
                return Arc::clone(response);
            }
            inner = self
                .state
                .cond
                .wait(inner)
                .expect("job phase lock poisoned");
        }
    }

    /// Blocks up to `timeout` for the job to finish; `None` on timeout.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Arc<ConsensusResponse>> {
        let deadline = std::time::Instant::now() + timeout;
        let mut inner = self.state.lock();
        loop {
            if let Phase::Done(ref response) = inner.phase {
                return Some(Arc::clone(response));
            }
            let remaining = deadline.checked_duration_since(std::time::Instant::now())?;
            let (guard, result) = self
                .state
                .cond
                .wait_timeout(inner, remaining)
                .expect("job phase lock poisoned");
            inner = guard;
            if result.timed_out() {
                return match inner.phase {
                    Phase::Done(ref response) => Some(Arc::clone(response)),
                    _ => None,
                };
            }
        }
    }

    /// Subscribes a batch notifier to this handle's completion (see
    /// [`crate::batch::BatchHandle`]).
    pub(crate) fn subscribe(&self, index: usize, notifier: &Arc<BatchNotifier>) {
        self.state.subscribe(index, notifier);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn empty_response() -> ConsensusResponse {
        ConsensusResponse {
            dataset: "d".into(),
            results: Vec::new(),
            total_solve_time: Duration::ZERO,
        }
    }

    #[test]
    fn id_formats_and_orders() {
        let a = JobId::from_raw(1);
        let b = JobId::from_raw(2);
        assert!(a < b);
        assert_eq!(a.to_string(), "job-1");
        assert_eq!(b.as_u64(), 2);
    }

    #[test]
    fn status_transitions_and_poll() {
        let state = Arc::new(JobState::new());
        let handle = JobHandle::new(JobId::from_raw(7), Arc::clone(&state));
        assert_eq!(handle.status(), JobStatus::Queued);
        assert_eq!(handle.status().label(), "queued");
        assert!(handle.try_poll().is_none());

        state.mark_running();
        assert_eq!(handle.status(), JobStatus::Running);
        // Idempotent while running.
        state.mark_running();
        assert_eq!(handle.status(), JobStatus::Running);

        state.complete(empty_response());
        assert_eq!(handle.status(), JobStatus::Done);
        // A completed job stays completed even if a late task marks running.
        state.mark_running();
        assert_eq!(handle.status(), JobStatus::Done);
        let first = handle.try_poll().expect("done");
        let second = handle.try_poll().expect("still done");
        assert!(Arc::ptr_eq(&first, &second), "pollers share one response");
    }

    #[test]
    fn wait_blocks_until_completion() {
        let state = Arc::new(JobState::new());
        let handle = JobHandle::new(JobId::from_raw(1), Arc::clone(&state));
        let waiter = {
            let handle = handle.clone();
            std::thread::spawn(move || handle.wait().dataset.clone())
        };
        std::thread::sleep(Duration::from_millis(20));
        state.complete(empty_response());
        assert_eq!(waiter.join().unwrap(), "d");
    }

    #[test]
    fn wait_timeout_expires_then_succeeds() {
        let state = Arc::new(JobState::new());
        let handle = JobHandle::new(JobId::from_raw(1), Arc::clone(&state));
        assert!(handle.wait_timeout(Duration::from_millis(10)).is_none());
        state.complete(empty_response());
        assert!(handle.wait_timeout(Duration::from_millis(10)).is_some());
    }
}
