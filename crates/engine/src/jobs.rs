//! Non-blocking job handles for asynchronously submitted consensus requests.
//!
//! [`crate::ConsensusEngine::submit_async`] returns a [`JobHandle`] immediately
//! instead of joining the batch: the caller can poll it ([`JobHandle::try_poll`]),
//! block on it ([`JobHandle::wait`] / [`JobHandle::wait_timeout`]), or stash it
//! in a registry keyed by [`JobId`] — which is exactly what the `mani-serve`
//! HTTP front-end does for its `GET /v1/jobs/{id}` endpoint.
//!
//! A job moves through three phases: **queued** (accepted, no worker has picked
//! up any of its method tasks yet), **running** (at least one method task
//! started), and **done** (every method task finished and the response was
//! assembled). Completed responses are shared as
//! [`std::sync::Arc`]`<`[`ConsensusResponse`]`>` so several pollers can observe
//! one result without copying it.

use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use crate::request::ConsensusResponse;

/// Identifier of an asynchronously submitted job, unique within one engine.
///
/// Ids are handed out in submission order starting at `1`; they are never
/// reused by the issuing engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(u64);

impl JobId {
    /// Creates a job id from its raw counter value.
    pub fn from_raw(raw: u64) -> Self {
        JobId(raw)
    }

    /// The raw counter value behind this id.
    pub fn as_u64(&self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for JobId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job-{}", self.0)
    }
}

/// Lifecycle phase of an asynchronously submitted job.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobStatus {
    /// Accepted into the submission queue; no worker has started it yet.
    Queued,
    /// At least one of the job's method tasks is executing.
    Running,
    /// Every method task finished; the response is available.
    Done,
}

impl JobStatus {
    /// Lower-case label used by logs and the HTTP API (`"queued"`, `"running"`,
    /// `"done"`).
    pub fn label(&self) -> &'static str {
        match self {
            JobStatus::Queued => "queued",
            JobStatus::Running => "running",
            JobStatus::Done => "done",
        }
    }
}

#[derive(Debug)]
enum Phase {
    Queued,
    Running,
    Done(Arc<ConsensusResponse>),
}

/// Shared completion state between the engine's worker tasks and the handle.
#[derive(Debug)]
pub(crate) struct JobState {
    phase: Mutex<Phase>,
    cond: Condvar,
}

impl JobState {
    pub(crate) fn new() -> Self {
        Self {
            phase: Mutex::new(Phase::Queued),
            cond: Condvar::new(),
        }
    }

    /// Marks the job running (first method task picked up). Idempotent; a
    /// completed job stays completed.
    pub(crate) fn mark_running(&self) {
        let mut phase = self.phase.lock().expect("job phase lock poisoned");
        if matches!(*phase, Phase::Queued) {
            *phase = Phase::Running;
        }
    }

    /// Publishes the finished response and wakes every waiter.
    pub(crate) fn complete(&self, response: ConsensusResponse) {
        let mut phase = self.phase.lock().expect("job phase lock poisoned");
        *phase = Phase::Done(Arc::new(response));
        self.cond.notify_all();
    }
}

/// A non-blocking handle to one asynchronously submitted consensus request.
///
/// Cloning the handle is cheap; all clones observe the same job.
#[derive(Debug, Clone)]
pub struct JobHandle {
    id: JobId,
    state: Arc<JobState>,
}

impl JobHandle {
    pub(crate) fn new(id: JobId, state: Arc<JobState>) -> Self {
        Self { id, state }
    }

    /// The job's engine-unique identifier.
    pub fn id(&self) -> JobId {
        self.id
    }

    /// The job's current lifecycle phase.
    pub fn status(&self) -> JobStatus {
        match *self.state.phase.lock().expect("job phase lock poisoned") {
            Phase::Queued => JobStatus::Queued,
            Phase::Running => JobStatus::Running,
            Phase::Done(_) => JobStatus::Done,
        }
    }

    /// Returns the response if the job already finished, without blocking.
    pub fn try_poll(&self) -> Option<Arc<ConsensusResponse>> {
        match *self.state.phase.lock().expect("job phase lock poisoned") {
            Phase::Done(ref response) => Some(Arc::clone(response)),
            _ => None,
        }
    }

    /// Blocks until the job finishes and returns its response.
    pub fn wait(&self) -> Arc<ConsensusResponse> {
        let mut phase = self.state.phase.lock().expect("job phase lock poisoned");
        loop {
            if let Phase::Done(ref response) = *phase {
                return Arc::clone(response);
            }
            phase = self
                .state
                .cond
                .wait(phase)
                .expect("job phase lock poisoned");
        }
    }

    /// Blocks up to `timeout` for the job to finish; `None` on timeout.
    pub fn wait_timeout(&self, timeout: Duration) -> Option<Arc<ConsensusResponse>> {
        let deadline = std::time::Instant::now() + timeout;
        let mut phase = self.state.phase.lock().expect("job phase lock poisoned");
        loop {
            if let Phase::Done(ref response) = *phase {
                return Some(Arc::clone(response));
            }
            let remaining = deadline.checked_duration_since(std::time::Instant::now())?;
            let (guard, result) = self
                .state
                .cond
                .wait_timeout(phase, remaining)
                .expect("job phase lock poisoned");
            phase = guard;
            if result.timed_out() {
                return match *phase {
                    Phase::Done(ref response) => Some(Arc::clone(response)),
                    _ => None,
                };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn empty_response() -> ConsensusResponse {
        ConsensusResponse {
            dataset: "d".into(),
            results: Vec::new(),
            total_solve_time: Duration::ZERO,
        }
    }

    #[test]
    fn id_formats_and_orders() {
        let a = JobId::from_raw(1);
        let b = JobId::from_raw(2);
        assert!(a < b);
        assert_eq!(a.to_string(), "job-1");
        assert_eq!(b.as_u64(), 2);
    }

    #[test]
    fn status_transitions_and_poll() {
        let state = Arc::new(JobState::new());
        let handle = JobHandle::new(JobId::from_raw(7), Arc::clone(&state));
        assert_eq!(handle.status(), JobStatus::Queued);
        assert_eq!(handle.status().label(), "queued");
        assert!(handle.try_poll().is_none());

        state.mark_running();
        assert_eq!(handle.status(), JobStatus::Running);
        // Idempotent while running.
        state.mark_running();
        assert_eq!(handle.status(), JobStatus::Running);

        state.complete(empty_response());
        assert_eq!(handle.status(), JobStatus::Done);
        // A completed job stays completed even if a late task marks running.
        state.mark_running();
        assert_eq!(handle.status(), JobStatus::Done);
        let first = handle.try_poll().expect("done");
        let second = handle.try_poll().expect("still done");
        assert!(Arc::ptr_eq(&first, &second), "pollers share one response");
    }

    #[test]
    fn wait_blocks_until_completion() {
        let state = Arc::new(JobState::new());
        let handle = JobHandle::new(JobId::from_raw(1), Arc::clone(&state));
        let waiter = {
            let handle = handle.clone();
            std::thread::spawn(move || handle.wait().dataset.clone())
        };
        std::thread::sleep(Duration::from_millis(20));
        state.complete(empty_response());
        assert_eq!(waiter.join().unwrap(), "d");
    }

    #[test]
    fn wait_timeout_expires_then_succeeds() {
        let state = Arc::new(JobState::new());
        let handle = JobHandle::new(JobId::from_raw(1), Arc::clone(&state));
        assert!(handle.wait_timeout(Duration::from_millis(10)).is_none());
        state.complete(empty_response());
        assert!(handle.wait_timeout(Duration::from_millis(10)).is_some());
    }
}
