//! A small fixed-size worker thread pool built on `std` threads and channels.
//!
//! The engine deliberately avoids external executor crates: jobs are boxed
//! closures pushed down an [`mpsc`] channel that every worker drains through a
//! shared receiver. [`WorkerPool::run_batch`] layers deterministic result
//! collection on top — tasks are indexed at submission and results re-ordered
//! on arrival, so callers observe request order no matter which worker
//! finished first. [`WorkerPool::run_parts`] is the lightweight scoped
//! variant for splitting *one* computation: the calling thread co-executes,
//! so it makes progress even when every worker is busy (or when called from a
//! worker itself).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

/// Saturation counters shared between the pool handle and its workers.
#[derive(Debug, Default)]
struct PoolCounters {
    /// Jobs enqueued but not yet picked up by a worker.
    queued: AtomicUsize,
    /// Workers currently executing a job.
    busy: AtomicUsize,
    /// Jobs finished (including panicked ones) since the pool started.
    executed: AtomicU64,
}

/// Point-in-time saturation view of a [`WorkerPool`], for `/metrics` and
/// `/v1/stats`: `queued > 0` with `busy == threads` means the pool is the
/// bottleneck.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Jobs waiting in the channel, not yet picked up.
    pub queued: usize,
    /// Workers currently executing a job.
    pub busy: usize,
    /// Jobs finished since the pool started.
    pub executed: u64,
}

/// Fixed-size pool of worker threads executing boxed jobs.
#[derive(Debug)]
pub struct WorkerPool {
    sender: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    counters: Arc<PoolCounters>,
}

impl WorkerPool {
    /// Spawns a pool with `threads` workers (clamped to at least one).
    pub fn new(threads: usize) -> Self {
        let threads = threads.max(1);
        let (sender, receiver) = mpsc::channel::<Job>();
        let receiver = Arc::new(Mutex::new(receiver));
        let workers = (0..threads)
            .map(|index| {
                let receiver = Arc::clone(&receiver);
                std::thread::Builder::new()
                    .name(format!("mani-worker-{index}"))
                    .spawn(move || worker_loop(&receiver))
                    .expect("spawning worker thread failed")
            })
            .collect();
        Self {
            sender: Some(sender),
            workers,
            counters: Arc::new(PoolCounters::default()),
        }
    }

    /// A pool sized to the machine: one worker per available core.
    pub fn with_default_size() -> Self {
        Self::new(default_threads())
    }

    /// Number of worker threads.
    pub fn num_threads(&self) -> usize {
        self.workers.len()
    }

    /// Enqueues one fire-and-forget job.
    pub fn execute(&self, job: Job) {
        // Wrap the job in counter updates. The guard decrements `busy` and
        // bumps `executed` in its Drop, so a panicking job (unwound past
        // `job()` and caught in `worker_loop`) still balances the counters.
        struct BusyGuard(Arc<PoolCounters>);
        impl Drop for BusyGuard {
            fn drop(&mut self) {
                self.0.busy.fetch_sub(1, Ordering::Relaxed);
                self.0.executed.fetch_add(1, Ordering::Relaxed);
            }
        }
        self.counters.queued.fetch_add(1, Ordering::Relaxed);
        let counters = Arc::clone(&self.counters);
        let wrapped: Job = Box::new(move || {
            counters.queued.fetch_sub(1, Ordering::Relaxed);
            counters.busy.fetch_add(1, Ordering::Relaxed);
            let _guard = BusyGuard(counters);
            job();
        });
        self.sender
            .as_ref()
            .expect("pool already shut down")
            .send(wrapped)
            .expect("worker threads terminated early");
    }

    /// Current saturation counters.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            queued: self.counters.queued.load(Ordering::Relaxed),
            busy: self.counters.busy.load(Ordering::Relaxed),
            executed: self.counters.executed.load(Ordering::Relaxed),
        }
    }

    /// Runs every task on the pool and returns their outputs **in submission
    /// order**, blocking until all have finished.
    ///
    /// # Panics
    /// Panics if any task panicked (the panic is reported, not swallowed).
    pub fn run_batch<T, F>(&self, tasks: Vec<F>) -> Vec<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let count = tasks.len();
        let (result_tx, result_rx) = mpsc::channel::<(usize, T)>();
        for (index, task) in tasks.into_iter().enumerate() {
            let result_tx = result_tx.clone();
            self.execute(Box::new(move || {
                let output = task();
                // The receiver only disappears if `run_batch`'s caller panicked
                // while collecting; nothing useful to do with the result then.
                let _ = result_tx.send((index, output));
            }));
        }
        drop(result_tx);

        let mut slots: Vec<Option<T>> = (0..count).map(|_| None).collect();
        for (index, output) in result_rx {
            slots[index] = Some(output);
        }
        let missing = slots.iter().filter(|s| s.is_none()).count();
        assert!(
            missing == 0,
            "{missing} of {count} pool tasks panicked before producing a result"
        );
        slots
            .into_iter()
            .map(|s| s.expect("checked above"))
            .collect()
    }

    /// Runs the parts of one divisible computation, sharing them between the
    /// pool and the **calling thread**, and returns the outputs in part order.
    ///
    /// Unlike [`WorkerPool::run_batch`], the caller claims and executes every
    /// part the pool has not yet started, so:
    ///
    /// * a busy pool degrades to inline execution instead of queueing delay;
    /// * a worker thread may call `run_parts` itself without deadlocking (the
    ///   nested call's parts are drained by that worker inline).
    ///
    /// This is the engine-level shard/merge primitive; kernels that need to
    /// borrow request-local data use `mani_ranking::run_parts` (scoped
    /// threads) instead.
    ///
    /// # Panics
    /// Panics if any part panicked (the panic is reported, not swallowed).
    pub fn run_parts<T, F>(&self, parts: Vec<F>) -> Vec<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        struct Slot<F> {
            claimed: AtomicBool,
            part: Mutex<Option<F>>,
        }
        fn claim<F>(slot: &Slot<F>) -> Option<F> {
            if slot.claimed.swap(true, Ordering::AcqRel) {
                return None;
            }
            Some(
                slot.part
                    .lock()
                    .expect("part slot lock poisoned")
                    .take()
                    .expect("a freshly claimed part is present"),
            )
        }

        let count = parts.len();
        if count == 0 {
            return Vec::new();
        }
        let slots: Arc<Vec<Slot<F>>> = Arc::new(
            parts
                .into_iter()
                .map(|part| Slot {
                    claimed: AtomicBool::new(false),
                    part: Mutex::new(Some(part)),
                })
                .collect(),
        );
        let (result_tx, result_rx) = mpsc::channel::<(usize, T)>();
        for index in 0..count {
            let slots = Arc::clone(&slots);
            let result_tx = result_tx.clone();
            self.execute(Box::new(move || {
                if let Some(part) = claim(&slots[index]) {
                    let _ = result_tx.send((index, part()));
                }
            }));
        }

        // Claim from the back while workers drain the queue from the front:
        // by the time the caller reaches a part, it either runs it inline or
        // a worker is already executing it (never merely queued).
        let mut outputs: Vec<Option<T>> = (0..count).map(|_| None).collect();
        let mut worker_claimed = count;
        for index in (0..count).rev() {
            if let Some(part) = claim(&slots[index]) {
                outputs[index] = Some(part());
                worker_claimed -= 1;
            }
        }
        drop(result_tx);
        // After the sweep every part is claimed, so exactly `worker_claimed`
        // results arrive from the pool. Receiving by count — never by channel
        // close — matters for liveness: queued no-op wrappers for
        // caller-claimed parts still hold senders, and when the caller *is*
        // the pool's only worker (nested call) they would never drop. The
        // iterator still terminates early if a worker part panics (its wrapper
        // sends nothing and all senders eventually drop), surfacing the panic
        // through the missing-result check below.
        for (index, output) in result_rx.iter().take(worker_claimed) {
            outputs[index] = Some(output);
        }
        let missing = outputs.iter().filter(|o| o.is_none()).count();
        assert!(
            missing == 0,
            "{missing} of {count} pool parts panicked before producing a result"
        );
        outputs
            .into_iter()
            .map(|o| o.expect("checked above"))
            .collect()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the channel ends every worker's receive loop.
        self.sender.take();
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

fn worker_loop(receiver: &Arc<Mutex<Receiver<Job>>>) {
    loop {
        let job = {
            let guard = receiver.lock().expect("pool receiver lock poisoned");
            guard.recv()
        };
        match job {
            // A panicking job must not kill the worker: remaining queued jobs
            // still need a thread. The panic surfaces in `run_batch` as a
            // missing result.
            Ok(job) => {
                let _ = catch_unwind(AssertUnwindSafe(job));
            }
            Err(_) => return, // channel closed: pool is shutting down
        }
    }
}

/// One worker per available core (minimum one).
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn batch_results_arrive_in_submission_order() {
        let pool = WorkerPool::new(4);
        let tasks: Vec<_> = (0..32usize)
            .map(|i| {
                move || {
                    // Stagger so completion order differs from submission order.
                    std::thread::sleep(std::time::Duration::from_millis((32 - i as u64) % 7));
                    i * 10
                }
            })
            .collect();
        let results = pool.run_batch(tasks);
        assert_eq!(results, (0..32).map(|i| i * 10).collect::<Vec<_>>());
    }

    #[test]
    fn all_workers_participate() {
        let pool = WorkerPool::new(4);
        assert_eq!(pool.num_threads(), 4);
        let counter = Arc::new(AtomicUsize::new(0));
        let tasks: Vec<_> = (0..64)
            .map(|_| {
                let counter = counter.clone();
                move || {
                    counter.fetch_add(1, Ordering::Relaxed);
                }
            })
            .collect();
        pool.run_batch(tasks);
        assert_eq!(counter.load(Ordering::Relaxed), 64);
    }

    #[test]
    fn zero_threads_clamps_to_one() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.num_threads(), 1);
        let results = pool.run_batch(vec![|| 7usize]);
        assert_eq!(results, vec![7]);
    }

    #[test]
    #[should_panic(expected = "pool tasks panicked")]
    fn panicking_task_is_reported_not_hung() {
        let pool = WorkerPool::new(2);
        let tasks: Vec<Box<dyn FnOnce() -> usize + Send>> = vec![
            Box::new(|| 1),
            Box::new(|| panic!("task exploded")),
            Box::new(|| 3),
        ];
        pool.run_batch(tasks);
    }

    #[test]
    fn pool_survives_a_panicking_job() {
        let pool = WorkerPool::new(1);
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run_batch(vec![Box::new(|| panic!("boom")) as Box<dyn FnOnce() + Send>])
        }));
        assert!(outcome.is_err());
        // The single worker must still be alive to run this.
        let results = pool.run_batch(vec![|| 42usize]);
        assert_eq!(results, vec![42]);
    }

    #[test]
    fn default_threads_is_positive() {
        assert!(default_threads() >= 1);
    }

    #[test]
    fn stats_count_executed_jobs_and_drain_to_idle() {
        let pool = WorkerPool::new(2);
        let results = pool.run_batch((0..8usize).map(|i| move || i).collect::<Vec<_>>());
        assert_eq!(results.len(), 8);
        // run_batch returns once results arrive; the final busy-guard drop may
        // trail by an instant, so poll briefly.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        loop {
            let stats = pool.stats();
            if stats.executed == 8 && stats.busy == 0 && stats.queued == 0 {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "stats stuck: {stats:?}"
            );
            std::thread::yield_now();
        }
    }

    #[test]
    fn stats_balance_after_a_panicking_job() {
        let pool = WorkerPool::new(1);
        let _ = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.run_batch(vec![Box::new(|| panic!("boom")) as Box<dyn FnOnce() + Send>])
        }));
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        loop {
            let stats = pool.stats();
            if stats.executed == 1 && stats.busy == 0 {
                break;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "stats stuck: {stats:?}"
            );
            std::thread::yield_now();
        }
    }

    #[test]
    fn run_parts_preserves_order_and_runs_everything_once() {
        let pool = WorkerPool::new(3);
        let counter = Arc::new(AtomicUsize::new(0));
        let parts: Vec<_> = (0..24usize)
            .map(|i| {
                let counter = counter.clone();
                move || {
                    counter.fetch_add(1, Ordering::Relaxed);
                    i * 2
                }
            })
            .collect();
        let results = pool.run_parts(parts);
        assert_eq!(results, (0..24).map(|i| i * 2).collect::<Vec<_>>());
        assert_eq!(
            counter.load(Ordering::Relaxed),
            24,
            "each part ran exactly once"
        );
    }

    #[test]
    fn nested_run_parts_from_a_worker_does_not_deadlock() {
        // A single-worker pool: the worker itself calls run_parts, so every
        // nested part must be drained inline by that worker.
        let pool = Arc::new(WorkerPool::new(1));
        let inner_pool = Arc::clone(&pool);
        let results = pool.run_parts(vec![move || {
            let inner: Vec<usize> = inner_pool.run_parts((0..8usize).map(|i| move || i).collect());
            inner.iter().sum::<usize>()
        }]);
        assert_eq!(results, vec![28]);
    }

    #[test]
    fn run_parts_handles_empty_input() {
        let pool = WorkerPool::new(2);
        let parts: Vec<fn() -> u32> = Vec::new();
        assert!(pool.run_parts(parts).is_empty());
    }

    // No expected message: the panic surfaces directly when the caller claimed
    // the part inline, and as the missing-result report when a worker did.
    #[test]
    #[should_panic]
    fn run_parts_reports_panicking_parts() {
        let pool = WorkerPool::new(2);
        let parts: Vec<Box<dyn FnOnce() -> usize + Send>> = vec![
            Box::new(|| 1),
            Box::new(|| panic!("part exploded")),
            Box::new(|| 3),
        ];
        pool.run_parts(parts);
    }
}
