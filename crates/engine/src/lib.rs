//! # mani-engine
//!
//! A multi-threaded **batch consensus engine** on top of the MANI-Rank MFCR
//! library crates: the execution layer that turns per-call primitives into a
//! request-driven subsystem.
//!
//! * [`ConsensusRequest`] / [`ConsensusResponse`] — the typed job API: a
//!   dataset, a list of [`mani_core::MethodKind`]s, fairness thresholds Δ, and
//!   an optional exact-solver node budget in; evaluated
//!   [`mani_core::MfcrOutcome`]s with per-method timings out.
//! * [`ConsensusEngine`] — fans batches out across a [`WorkerPool`] of `std`
//!   threads and joins results in deterministic request order.
//! * [`JobHandle`] — non-blocking submission: [`ConsensusEngine::submit_async`]
//!   returns a handle backed by a bounded queue ([`EngineConfig::queue_depth`])
//!   that can be polled, waited on, or registered by [`JobId`]; a full queue
//!   rejects with [`EngineError::Overloaded`] instead of growing without bound.
//! * [`BatchHandle`] — streaming batches:
//!   [`ConsensusEngine::submit_batch_streaming`] groups a batch's job handles
//!   and yields each response in **as-completed order** (condvar-signalled by
//!   the job completion transition, no polling), so consumers see cheap
//!   solves while expensive ones are still searching.
//! * [`PrecedenceCache`] — content-addressed sharing of the `O(n² · |R|)`
//!   precedence matrix and the [`mani_ranking::GroupIndex`] per dataset: a
//!   batch over `d` datasets builds exactly `d` matrices no matter how many
//!   methods and requests reference them (observable via [`CacheStats`]).
//! * [`csvio`] — a hand-rolled CSV front-end (candidate tables, ranking
//!   profiles) powering the `mani` CLI binary.
//! * [`report`] — aligned text tables for consensus runs and fairness audits.
//!
//! ## Quickstart
//!
//! ```
//! use std::sync::Arc;
//! use mani_engine::{ConsensusEngine, ConsensusRequest, EngineDataset};
//! use mani_core::MethodKind;
//! use mani_datagen::{binary_population, FairnessTarget, MallowsModel, ModalRankingBuilder};
//! use mani_fairness::FairnessThresholds;
//! use mani_ranking::GroupIndex;
//!
//! // Two datasets, three methods each: one batch, six results, two matrix builds.
//! let engine = ConsensusEngine::new();
//! let mut requests = Vec::new();
//! for seed in [1u64, 2] {
//!     let db = binary_population(16, 0.5, 0.5, seed);
//!     let modal = ModalRankingBuilder::new(&db).build(&FairnessTarget::low_fair(2));
//!     let profile = MallowsModel::new(modal, 0.8).sample_profile(10, seed);
//!     let dataset = Arc::new(EngineDataset::new(format!("d{seed}"), db, profile).unwrap());
//!     requests.push(ConsensusRequest::new(
//!         dataset,
//!         [MethodKind::FairBorda, MethodKind::FairCopeland, MethodKind::FairSchulze],
//!         FairnessThresholds::uniform(0.2),
//!     ));
//! }
//! let responses = engine.submit_batch(requests);
//! assert!(responses.iter().all(|r| r.is_complete()));
//! assert_eq!(engine.cache().stats().builds, 2);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod batch;
pub mod cache;
pub mod csvio;
pub mod dataset;
#[allow(clippy::module_inception)]
pub mod engine;
pub mod error;
pub mod jobs;
pub mod pool;
pub mod report;
pub mod request;

pub use batch::{BatchHandle, BatchItem, BatchProgress};
pub use cache::{CacheStats, PrecedenceCache, RankingDelta, SharedArtifacts};
pub use dataset::EngineDataset;
pub use engine::{ConsensusEngine, EngineConfig, EngineStats, DEFAULT_QUEUE_DEPTH};
pub use error::EngineError;
pub use jobs::{JobHandle, JobId, JobStatus};
pub use mani_obs::{PhaseSnapshot, TraceTimeline};
pub use mani_ranking::Parallelism;
pub use pool::{PoolStats, WorkerPool};
pub use report::{attribute_labels, audit_table, response_table, ReportTable};
pub use request::{ConsensusRequest, ConsensusResponse, MethodResult};
