//! Engine-level error type.

use mani_ranking::RankingError;

/// Errors surfaced by the engine, its CSV front-end, and the CLI.
#[derive(Debug)]
pub enum EngineError {
    /// An underlying ranking/consensus primitive failed.
    Ranking(RankingError),
    /// A CSV file could not be parsed.
    Csv {
        /// 1-based line number of the offending record (0 for file-level problems).
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// Reading or writing a file failed.
    Io(std::io::Error),
    /// A request was structurally invalid (empty method list, unknown method name, ...).
    InvalidRequest(String),
    /// The engine's bounded submission queue is full; the request was rejected
    /// instead of growing the queue without bound. Retry after in-flight jobs
    /// drain (the HTTP front-end maps this to status `429 Too Many Requests`).
    Overloaded {
        /// Jobs submitted but not yet completed at rejection time.
        in_flight: usize,
        /// The engine's configured queue depth.
        queue_depth: usize,
    },
}

impl EngineError {
    /// Convenience constructor for CSV errors.
    pub fn csv(line: usize, message: impl Into<String>) -> Self {
        EngineError::Csv {
            line,
            message: message.into(),
        }
    }

    /// Convenience constructor for invalid-request errors.
    pub fn invalid(message: impl Into<String>) -> Self {
        EngineError::InvalidRequest(message.into())
    }
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Ranking(e) => write!(f, "ranking error: {e}"),
            EngineError::Csv { line: 0, message } => write!(f, "csv error: {message}"),
            EngineError::Csv { line, message } => write!(f, "csv error (line {line}): {message}"),
            EngineError::Io(e) => write!(f, "io error: {e}"),
            EngineError::InvalidRequest(message) => write!(f, "invalid request: {message}"),
            EngineError::Overloaded {
                in_flight,
                queue_depth,
            } => write!(
                f,
                "engine overloaded: {in_flight} job(s) in flight at queue depth {queue_depth}; retry later"
            ),
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Ranking(e) => Some(e),
            EngineError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<RankingError> for EngineError {
    fn from(e: RankingError) -> Self {
        EngineError::Ranking(e)
    }
}

impl From<std::io::Error> for EngineError {
    fn from(e: std::io::Error) -> Self {
        EngineError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_each_variant() {
        let e = EngineError::csv(3, "bad cell");
        assert_eq!(e.to_string(), "csv error (line 3): bad cell");
        let e = EngineError::csv(0, "empty file");
        assert_eq!(e.to_string(), "csv error: empty file");
        let e = EngineError::invalid("no methods");
        assert_eq!(e.to_string(), "invalid request: no methods");
        let e = EngineError::Overloaded {
            in_flight: 4,
            queue_depth: 4,
        };
        assert!(e.to_string().contains("overloaded"), "{e}");
        let e: EngineError = RankingError::EmptyProfile.into();
        assert!(e.to_string().starts_with("ranking error"));
        let e: EngineError = std::io::Error::new(std::io::ErrorKind::NotFound, "gone").into();
        assert!(e.to_string().contains("gone"));
    }
}
