//! Hand-rolled CSV front-end for the `mani` CLI: candidate tables and ranking
//! profiles, in both directions.
//!
//! ## Candidate files
//!
//! The header names the protected attributes; every row is one candidate.
//! Attribute value domains are inferred from the values seen, in first-
//! appearance order (which keeps ids deterministic for a given file):
//!
//! ```csv
//! name,Gender,Race
//! alice,Woman,GroupA
//! bola,Man,GroupB
//! ```
//!
//! An optional `# domain: Attribute=v1,v2,...` comment pins an attribute's
//! value order explicitly (the writer always emits these so files round-trip
//! exactly); inferred values seen later are appended after the declared ones.
//!
//! ## Ranking files
//!
//! One ranking per line, candidate names from best to worst. Blank lines and
//! `#` comments are skipped:
//!
//! ```csv
//! alice,bola,chen
//! bola,alice,chen
//! ```
//!
//! Quoting follows RFC-4180: cells containing commas or quotes are wrapped in
//! double quotes, embedded quotes doubled.

use std::path::Path;

use mani_ranking::{CandidateDb, CandidateDbBuilder, Ranking, RankingProfile};

use crate::error::EngineError;

/// Parses a candidate CSV document (see module docs for the format).
pub fn parse_candidates(text: &str) -> Result<CandidateDb, EngineError> {
    let mut lines = numbered_records(text);
    let (header_line, header) = lines
        .next()
        .ok_or_else(|| EngineError::csv(0, "candidate file has no header"))?;
    let header = header?;
    if header.len() < 2 || !header[0].eq_ignore_ascii_case("name") {
        return Err(EngineError::csv(
            header_line,
            "header must be `name,<Attribute>,...` with at least one attribute",
        ));
    }
    let attribute_names = &header[1..];

    // First pass: collect rows and infer each attribute's domain. Explicitly
    // declared domains (`# domain:` comments) come first, in declared order;
    // values only seen in rows are appended in first-appearance order.
    let mut rows: Vec<(usize, Vec<String>)> = Vec::new();
    let mut domains: Vec<Vec<String>> = attribute_names
        .iter()
        .map(|attribute| declared_domain(text, attribute))
        .collect();
    for item in lines {
        let (line, cells) = item;
        let cells = cells?;
        if cells.len() != header.len() {
            return Err(EngineError::csv(
                line,
                format!(
                    "expected {} cells (name + {} attributes), found {}",
                    header.len(),
                    attribute_names.len(),
                    cells.len()
                ),
            ));
        }
        for (attr_index, value) in cells[1..].iter().enumerate() {
            if !domains[attr_index].contains(value) {
                domains[attr_index].push(value.clone());
            }
        }
        rows.push((line, cells));
    }
    if rows.is_empty() {
        return Err(EngineError::csv(0, "candidate file has no data rows"));
    }

    let mut builder = CandidateDbBuilder::new();
    let mut attr_ids = Vec::with_capacity(attribute_names.len());
    for (attribute, domain) in attribute_names.iter().zip(&domains) {
        if domain.len() < 2 {
            return Err(EngineError::csv(
                0,
                format!(
                    "attribute `{attribute}` has {} distinct value(s); protected attributes need at least 2",
                    domain.len()
                ),
            ));
        }
        let id = builder
            .add_attribute(attribute.clone(), domain.iter().map(String::as_str))
            .map_err(EngineError::from)?;
        attr_ids.push(id);
    }
    for (line, cells) in rows {
        let assignments = attr_ids.iter().copied().zip(cells[1..].iter().cloned());
        builder
            .add_candidate_named(cells[0].clone(), assignments)
            .map_err(|e| EngineError::csv(line, e.to_string()))?;
    }
    builder.build().map_err(EngineError::from)
}

/// Parses a ranking CSV document against a known candidate database.
pub fn parse_rankings(text: &str, db: &CandidateDb) -> Result<RankingProfile, EngineError> {
    let mut rankings = Vec::new();
    for (line, cells) in numbered_records(text) {
        let cells = cells?;
        if cells.len() != db.len() {
            return Err(EngineError::csv(
                line,
                format!(
                    "ranking lists {} candidates but the database has {}",
                    cells.len(),
                    db.len()
                ),
            ));
        }
        let mut order = Vec::with_capacity(cells.len());
        for name in &cells {
            let id = db
                .candidate_by_name(name)
                .ok_or_else(|| EngineError::csv(line, format!("unknown candidate `{name}`")))?;
            order.push(id);
        }
        let ranking =
            Ranking::from_order(order).map_err(|e| EngineError::csv(line, e.to_string()))?;
        rankings.push(ranking);
    }
    RankingProfile::for_database(db, rankings).map_err(EngineError::from)
}

/// Values pinned for `attribute` by a `# domain:` comment, if any. The value
/// list uses the same RFC-4180 quoting as data rows, so values containing
/// commas or quotes survive.
fn declared_domain(text: &str, attribute: &str) -> Vec<String> {
    for (index, raw) in text.lines().enumerate() {
        let Some(rest) = raw.trim().strip_prefix("# domain:") else {
            continue;
        };
        let Some((name, values)) = rest.split_once('=') else {
            continue;
        };
        if name.trim() == attribute {
            return split_record(values, index + 1)
                .unwrap_or_default()
                .into_iter()
                .filter(|v| !v.is_empty())
                .collect();
        }
    }
    Vec::new()
}

/// Renders a candidate database in the CSV format [`parse_candidates`] reads.
pub fn render_candidates(db: &CandidateDb) -> String {
    let mut out = String::from("name");
    for (_, attribute) in db.schema().attributes() {
        out.push(',');
        out.push_str(&escape(attribute.name()));
    }
    out.push('\n');
    // Pin value domains so ids survive a round trip even when the first
    // candidates do not exhibit every value in schema order.
    for (_, attribute) in db.schema().attributes() {
        let values: Vec<String> = attribute.values().map(escape).collect();
        out.push_str(&format!(
            "# domain: {}={}\n",
            attribute.name(),
            values.join(",")
        ));
    }
    for (id, candidate) in db.candidates() {
        out.push_str(&escape(candidate.name()));
        for (attr_id, attribute) in db.schema().attributes() {
            let value = db
                .value_of(id, attr_id)
                .ok()
                .and_then(|v| attribute.value_name(v))
                .unwrap_or("?");
            out.push(',');
            out.push_str(&escape(value));
        }
        out.push('\n');
    }
    out
}

/// Renders a profile in the CSV format [`parse_rankings`] reads.
pub fn render_rankings(profile: &RankingProfile, db: &CandidateDb) -> String {
    let mut out = String::new();
    for ranking in profile.rankings() {
        let names: Vec<String> = ranking
            .iter()
            .map(|id| {
                db.candidate(id)
                    .map(|c| escape(c.name()))
                    .unwrap_or_else(|_| "?".to_string())
            })
            .collect();
        out.push_str(&names.join(","));
        out.push('\n');
    }
    out
}

/// Loads a candidate database from a CSV file.
pub fn load_candidates(path: &Path) -> Result<CandidateDb, EngineError> {
    parse_candidates(&std::fs::read_to_string(path)?)
}

/// Loads a ranking profile from a CSV file.
pub fn load_rankings(path: &Path, db: &CandidateDb) -> Result<RankingProfile, EngineError> {
    parse_rankings(&std::fs::read_to_string(path)?, db)
}

/// Writes a candidate database to a CSV file.
pub fn save_candidates(db: &CandidateDb, path: &Path) -> Result<(), EngineError> {
    std::fs::write(path, render_candidates(db)).map_err(EngineError::from)
}

/// Writes a ranking profile to a CSV file.
pub fn save_rankings(
    profile: &RankingProfile,
    db: &CandidateDb,
    path: &Path,
) -> Result<(), EngineError> {
    std::fs::write(path, render_rankings(profile, db)).map_err(EngineError::from)
}

/// Iterates `(1-based line number, parsed cells)` over data records, skipping
/// blank lines and `#` comments.
fn numbered_records(
    text: &str,
) -> impl Iterator<Item = (usize, Result<Vec<String>, EngineError>)> + '_ {
    text.lines().enumerate().filter_map(|(index, raw)| {
        let line = index + 1;
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            return None;
        }
        Some((line, split_record(trimmed, line)))
    })
}

/// Splits one CSV record, honouring RFC-4180 double-quote quoting.
fn split_record(record: &str, line: usize) -> Result<Vec<String>, EngineError> {
    let mut cells = Vec::new();
    let mut current = String::new();
    let mut chars = record.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        match c {
            '"' if in_quotes => {
                if chars.peek() == Some(&'"') {
                    chars.next();
                    current.push('"');
                } else {
                    in_quotes = false;
                }
            }
            // Opening quote: allowed when only (ignorable) whitespace has
            // accumulated in the pending cell, e.g. `alice, "x,y"`.
            '"' if current.trim().is_empty() => {
                current.clear();
                in_quotes = true;
            }
            '"' => {
                return Err(EngineError::csv(
                    line,
                    "quote may only open at the start of a cell",
                ))
            }
            ',' if !in_quotes => {
                cells.push(std::mem::take(&mut current).trim().to_string());
            }
            c => current.push(c),
        }
    }
    if in_quotes {
        return Err(EngineError::csv(line, "unterminated quoted cell"));
    }
    cells.push(current.trim().to_string());
    Ok(cells)
}

/// Quotes a cell when needed.
fn escape(cell: &str) -> String {
    if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
        format!("\"{}\"", cell.replace('"', "\"\""))
    } else {
        cell.to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CANDIDATES: &str = "\
name,Gender,Race
alice,Woman,GroupA
bola,Man,GroupB
chen,Woman,GroupB
dani,Man,GroupA
";

    #[test]
    fn candidates_parse_with_inferred_domains() {
        let db = parse_candidates(CANDIDATES).unwrap();
        assert_eq!(db.len(), 4);
        assert_eq!(db.schema().num_attributes(), 2);
        let gender = db.schema().attribute_id("Gender").unwrap();
        // Domain order = first-appearance order: Woman then Man.
        let attribute = db.schema().attribute(gender).unwrap();
        let values: Vec<&str> = attribute.values().collect();
        assert_eq!(values, vec!["Woman", "Man"]);
        assert!(db.candidate_by_name("chen").is_some());
    }

    #[test]
    fn rankings_parse_against_database() {
        let db = parse_candidates(CANDIDATES).unwrap();
        let profile = parse_rankings(
            "alice,bola,chen,dani\n# a comment\n\ndani,chen,bola,alice\n",
            &db,
        )
        .unwrap();
        assert_eq!(profile.len(), 2);
        assert_eq!(profile.num_candidates(), 4);
        let first = &profile.rankings()[0];
        assert_eq!(
            first.candidate_at(0),
            db.candidate_by_name("alice").unwrap()
        );
    }

    #[test]
    fn helpful_errors_for_malformed_input() {
        assert!(matches!(
            parse_candidates(""),
            Err(EngineError::Csv { line: 0, .. })
        ));
        assert!(parse_candidates("name\nalice\n").is_err(), "no attributes");
        let single_valued = "name,G\na,x\nb,x\n";
        let err = parse_candidates(single_valued).unwrap_err();
        assert!(err.to_string().contains("at least 2"), "{err}");

        let db = parse_candidates(CANDIDATES).unwrap();
        let err = parse_rankings("alice,bola,chen\n", &db).unwrap_err();
        assert!(err.to_string().contains("lists 3"), "{err}");
        let err = parse_rankings("alice,bola,chen,zara\n", &db).unwrap_err();
        assert!(err.to_string().contains("unknown candidate"), "{err}");
        let err = parse_rankings("alice,alice,bola,chen\n", &db).unwrap_err();
        assert!(err.to_string().contains("line 1"), "{err}");
    }

    #[test]
    fn quoting_round_trips() {
        let tricky = "name,Team\n\"last, first\",\"the \"\"A\"\" team\"\nplain,b-team\n";
        let db = parse_candidates(tricky).unwrap();
        assert!(db.candidate_by_name("last, first").is_some());
        let rendered = render_candidates(&db);
        let reparsed = parse_candidates(&rendered).unwrap();
        assert_eq!(db, reparsed);
    }

    #[test]
    fn database_and_profile_round_trip_through_rendering() {
        let db = parse_candidates(CANDIDATES).unwrap();
        let profile = parse_rankings("alice,bola,chen,dani\ndani,chen,bola,alice\n", &db).unwrap();
        let db2 = parse_candidates(&render_candidates(&db)).unwrap();
        assert_eq!(db, db2);
        let profile2 = parse_rankings(&render_rankings(&profile, &db), &db2).unwrap();
        assert_eq!(profile, profile2);
    }

    #[test]
    fn declared_domains_pin_value_order() {
        let text = "\
name,Gender
# domain: Gender=Man,Woman
a,Woman
b,Man
";
        let db = parse_candidates(text).unwrap();
        let gender = db.schema().attribute_id("Gender").unwrap();
        let attribute = db.schema().attribute(gender).unwrap();
        let values: Vec<&str> = attribute.values().collect();
        // Declared order wins over first-appearance order.
        assert_eq!(values, vec!["Man", "Woman"]);
        // Undeclared values are appended after the declared ones.
        let extended = "name,G\n# domain: G=x,y\na,z\nb,x\n";
        let db = parse_candidates(extended).unwrap();
        let g = db.schema().attribute_id("G").unwrap();
        let values: Vec<&str> = db.schema().attribute(g).unwrap().values().collect();
        assert_eq!(values, vec!["x", "y", "z"]);
    }

    #[test]
    fn comma_bearing_attribute_values_round_trip() {
        let text = "name,Team\na,\"last, first\"\nb,solo\n";
        let db = parse_candidates(text).unwrap();
        let team = db.schema().attribute_id("Team").unwrap();
        let values: Vec<&str> = db.schema().attribute(team).unwrap().values().collect();
        assert_eq!(values, vec!["last, first", "solo"]);
        // The emitted `# domain:` line quotes the comma, so the round trip is exact.
        let rendered = render_candidates(&db);
        let reparsed = parse_candidates(&rendered).unwrap();
        assert_eq!(db, reparsed);
    }

    #[test]
    fn whitespace_before_opening_quote_is_accepted() {
        let cells = split_record("alice, \"x,y\", last", 1).unwrap();
        assert_eq!(cells, vec!["alice", "x,y", "last"]);
        // A quote in the middle of accumulated content is still rejected.
        assert!(split_record("ab\"cd", 1).is_err());
    }

    #[test]
    fn unterminated_quote_is_rejected() {
        let err = split_record("\"open", 9).unwrap_err();
        assert!(err.to_string().contains("line 9"));
    }
}
