//! Shared-artifact cache: one precedence matrix and one group index per
//! distinct `(db, profile)` pair, shared across every method and request in a
//! batch instead of being recomputed per method.
//!
//! The precedence matrix costs `O(n² · |R|)` to build — by far the dominant
//! shared cost of the pairwise methods — so building it once per dataset and
//! handing every worker an [`std::sync::Arc`] is the engine's core speedup.
//! Construction is guarded by a per-key [`OnceLock`], so concurrent workers
//! asking for the same dataset block on a single build instead of duplicating
//! it; [`CacheStats::builds`] therefore counts exactly one build per distinct
//! dataset.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use mani_ranking::{GroupIndex, Parallelism, PrecedenceMatrix, Ranking};

use crate::dataset::EngineDataset;

/// One incremental edit to a dataset's ranking profile, used by
/// [`PrecedenceCache::derive_with`] to fold the edit into a warm precedence
/// matrix in `O(n²)` instead of rebuilding from scratch in `O(n² · |R|)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RankingDelta {
    /// Add one ranking with the given weight (weight `w` is equivalent to
    /// appending `w` identical copies).
    Append {
        /// The ranking being added.
        ranking: Ranking,
        /// How many copies it counts for.
        weight: u32,
    },
    /// Remove one ranking with the given weight; fails (falling back to a
    /// full rebuild) if the matrix does not contain it with that weight.
    Retract {
        /// The ranking being removed.
        ranking: Ranking,
        /// How many copies to remove.
        weight: u32,
    },
}

/// The per-dataset artifacts every method shares.
#[derive(Debug, Clone)]
pub struct SharedArtifacts {
    /// Group index over the dataset's candidate database.
    pub groups: Arc<GroupIndex>,
    /// Precedence matrix of the dataset's profile.
    pub precedence: Arc<PrecedenceMatrix>,
}

/// Counters describing cache effectiveness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Total `get_or_build` calls.
    pub lookups: u64,
    /// Calls that found fully-built artifacts.
    pub hits: u64,
    /// Number of times artifacts were actually constructed (one per distinct
    /// dataset, however many threads raced on it).
    pub builds: u64,
    /// Total wall-clock nanoseconds spent building artifacts (matrix +
    /// group-index construction), summed over all builds.
    pub build_ns: u64,
    /// Rankings folded *into* warm matrices by delta derivation instead of a
    /// full rebuild.
    pub delta_appends: u64,
    /// Rankings folded *out of* warm matrices by delta derivation.
    pub delta_retracts: u64,
    /// Delta derivations that could not reuse a warm parent matrix (parent
    /// evicted, fingerprint mismatch, or an inapplicable retract) and fell
    /// back to a full rebuild.
    pub delta_rebuild_fallbacks: u64,
    /// Number of cached datasets.
    pub entries: usize,
}

/// A cached build together with the exact inputs it was built from, so hash
/// collisions can be detected instead of silently serving foreign artifacts.
#[derive(Debug)]
struct CacheEntry {
    db: Arc<mani_ranking::CandidateDb>,
    profile: Arc<mani_ranking::RankingProfile>,
    artifacts: SharedArtifacts,
}

impl CacheEntry {
    /// True when this entry was built from content equal to `dataset`'s
    /// (pointer equality short-circuits the deep comparison).
    fn matches(&self, dataset: &EngineDataset) -> bool {
        (Arc::ptr_eq(&self.db, dataset.db()) || *self.db == **dataset.db())
            && (Arc::ptr_eq(&self.profile, dataset.profile())
                || *self.profile == **dataset.profile())
    }
}

/// Thread-safe cache keyed by [`EngineDataset::fingerprint`].
#[derive(Debug, Default)]
pub struct PrecedenceCache {
    entries: Mutex<HashMap<u64, Arc<OnceLock<CacheEntry>>>>,
    lookups: AtomicU64,
    hits: AtomicU64,
    builds: AtomicU64,
    build_ns: AtomicU64,
    delta_appends: AtomicU64,
    delta_retracts: AtomicU64,
    delta_rebuild_fallbacks: AtomicU64,
}

impl PrecedenceCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the dataset's shared artifacts, building them at most once per
    /// distinct dataset. The boolean is `true` when the artifacts were already
    /// built (a cache hit).
    pub fn get_or_build(&self, dataset: &EngineDataset) -> (SharedArtifacts, bool) {
        self.get_or_build_with(dataset, &Parallelism::serial())
    }

    /// [`PrecedenceCache::get_or_build`] with a kernel-parallelism budget:
    /// misses build the precedence matrix with sharded parallel construction
    /// (bit-identical to the serial build, so mixed callers share entries
    /// safely).
    pub fn get_or_build_with(
        &self,
        dataset: &EngineDataset,
        parallelism: &Parallelism,
    ) -> (SharedArtifacts, bool) {
        self.lookups.fetch_add(1, Ordering::Relaxed);
        let key = dataset.fingerprint();
        let cell = {
            let mut entries = self.entries.lock().expect("cache lock poisoned");
            entries.entry(key).or_default().clone()
        };
        let hit = cell.get().is_some();
        let entry = cell.get_or_init(|| CacheEntry {
            db: Arc::clone(dataset.db()),
            profile: Arc::clone(dataset.profile()),
            artifacts: self.build_artifacts(dataset, parallelism),
        });
        // A 64-bit fingerprint can (astronomically rarely) collide; serving
        // another dataset's matrix would corrupt every downstream result, so
        // verify the content and fall back to an uncached build on mismatch.
        if !entry.matches(dataset) {
            return (self.build_artifacts(dataset, parallelism), false);
        }
        if hit {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        (entry.artifacts.clone(), hit)
    }

    /// Derives and caches `child`'s artifacts from `parent`'s warm entry by
    /// folding `deltas` into a copy-on-write clone of the parent's precedence
    /// matrix — `O(n²)` per delta instead of the `O(n² · |R|)` full rebuild.
    ///
    /// `child` must be the dataset that results from applying `deltas` to
    /// `parent` (the caller edits the profile; this method maintains the
    /// matrix). When the parent has no warm entry, its fingerprint collides
    /// with foreign content, or a delta is inapplicable (e.g. retracting an
    /// absent ranking), the derivation falls back to a full
    /// [`PrecedenceCache::get_or_build_with`] build and charges
    /// [`CacheStats::delta_rebuild_fallbacks`]. The boolean is `true` when
    /// the artifacts were produced without a full matrix build.
    pub fn derive_with(
        &self,
        parent: &EngineDataset,
        child: &EngineDataset,
        deltas: &[RankingDelta],
        parallelism: &Parallelism,
    ) -> (SharedArtifacts, bool) {
        let parent_cell = {
            let entries = self.entries.lock().expect("cache lock poisoned");
            entries.get(&parent.fingerprint()).cloned()
        };
        let derived = parent_cell
            .as_ref()
            .and_then(|cell| cell.get())
            .filter(|entry| entry.matches(parent))
            .and_then(|entry| {
                let mut matrix = (*entry.artifacts.precedence).clone();
                let mut appends = 0u64;
                let mut retracts = 0u64;
                for delta in deltas {
                    match delta {
                        RankingDelta::Append { ranking, weight } => {
                            matrix.apply_append(ranking, *weight).ok()?;
                            appends += 1;
                        }
                        RankingDelta::Retract { ranking, weight } => {
                            matrix.apply_retract(ranking, *weight).ok()?;
                            retracts += 1;
                        }
                    }
                }
                // Ranking edits leave the candidate database untouched, so
                // the group index is shared with the parent, not rebuilt.
                let groups = if Arc::ptr_eq(parent.db(), child.db()) {
                    Arc::clone(&entry.artifacts.groups)
                } else {
                    Arc::new(GroupIndex::new(child.db()))
                };
                self.delta_appends.fetch_add(appends, Ordering::Relaxed);
                self.delta_retracts.fetch_add(retracts, Ordering::Relaxed);
                Some(SharedArtifacts {
                    groups,
                    precedence: Arc::new(matrix),
                })
            });
        let Some(artifacts) = derived else {
            self.delta_rebuild_fallbacks.fetch_add(1, Ordering::Relaxed);
            return (self.get_or_build_with(child, parallelism).0, false);
        };
        // Install the derived entry under the child's fingerprint so
        // subsequent solves of the edited dataset hit a warm matrix.
        let cell = {
            let mut entries = self.entries.lock().expect("cache lock poisoned");
            entries.entry(child.fingerprint()).or_default().clone()
        };
        let entry = cell.get_or_init(|| CacheEntry {
            db: Arc::clone(child.db()),
            profile: Arc::clone(child.profile()),
            artifacts: artifacts.clone(),
        });
        if entry.matches(child) {
            (entry.artifacts.clone(), true)
        } else {
            (artifacts, true)
        }
    }

    /// Builds artifacts for a dataset, charging the build counters.
    fn build_artifacts(
        &self,
        dataset: &EngineDataset,
        parallelism: &Parallelism,
    ) -> SharedArtifacts {
        let started = Instant::now();
        self.builds.fetch_add(1, Ordering::Relaxed);
        let artifacts = SharedArtifacts {
            groups: Arc::new(GroupIndex::new(dataset.db())),
            precedence: Arc::new(dataset.profile().precedence_matrix_with(parallelism)),
        };
        self.build_ns
            .fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
        artifacts
    }

    /// Current effectiveness counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            lookups: self.lookups.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            builds: self.builds.load(Ordering::Relaxed),
            build_ns: self.build_ns.load(Ordering::Relaxed),
            delta_appends: self.delta_appends.load(Ordering::Relaxed),
            delta_retracts: self.delta_retracts.load(Ordering::Relaxed),
            delta_rebuild_fallbacks: self.delta_rebuild_fallbacks.load(Ordering::Relaxed),
            entries: self.entries.lock().expect("cache lock poisoned").len(),
        }
    }

    /// Drops every cached dataset (counters are preserved).
    pub fn clear(&self) {
        self.entries.lock().expect("cache lock poisoned").clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mani_ranking::{CandidateDbBuilder, Ranking, RankingProfile};

    fn dataset(n: usize, m: usize, name: &str) -> EngineDataset {
        let mut b = CandidateDbBuilder::new();
        let g = b.add_attribute("G", ["x", "y"]).unwrap();
        for i in 0..n {
            b.add_candidate(format!("c{i}"), [(g, i % 2)]).unwrap();
        }
        let db = b.build().unwrap();
        let profile = RankingProfile::new(vec![Ranking::identity(n); m]).unwrap();
        EngineDataset::new(name, db, profile).unwrap()
    }

    #[test]
    fn second_lookup_hits_and_shares_the_same_allocation() {
        let cache = PrecedenceCache::new();
        let ds = dataset(6, 3, "a");
        let (first, hit_first) = cache.get_or_build(&ds);
        assert!(!hit_first, "first lookup must build");
        // Same content under a different name: still a hit on the same entry.
        let renamed = dataset(6, 3, "same-content-different-name");
        let (second, hit_second) = cache.get_or_build(&renamed);
        assert!(hit_second, "second lookup must hit");
        assert!(Arc::ptr_eq(&first.precedence, &second.precedence));
        assert!(Arc::ptr_eq(&first.groups, &second.groups));
        let stats = cache.stats();
        assert_eq!(stats.lookups, 2);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.builds, 1);
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn distinct_datasets_get_distinct_entries() {
        let cache = PrecedenceCache::new();
        let (_, hit_a) = cache.get_or_build(&dataset(6, 3, "a"));
        let (_, hit_b) = cache.get_or_build(&dataset(8, 3, "b"));
        assert!(!hit_a && !hit_b);
        let stats = cache.stats();
        assert_eq!(stats.builds, 2);
        assert_eq!(stats.entries, 2);
        cache.clear();
        assert_eq!(cache.stats().entries, 0);
    }

    /// The dataset that results from appending `extra` to `parent`'s profile
    /// (sharing the candidate database Arc, as the service PATCH path does).
    fn appended(parent: &EngineDataset, extra: Ranking, name: &str) -> EngineDataset {
        let mut rankings = parent.profile().rankings().to_vec();
        rankings.push(extra);
        EngineDataset::from_arcs(
            name,
            Arc::clone(parent.db()),
            Arc::new(RankingProfile::new(rankings).unwrap()),
        )
        .unwrap()
    }

    #[test]
    fn derive_folds_appends_without_a_full_build() {
        let cache = PrecedenceCache::new();
        let parent = dataset(6, 3, "p");
        cache.get_or_build(&parent);
        let extra = Ranking::identity(6).reversed();
        let child = appended(&parent, extra.clone(), "p+1");
        let deltas = [RankingDelta::Append {
            ranking: extra,
            weight: 1,
        }];
        let (derived, warm) = cache.derive_with(&parent, &child, &deltas, &Parallelism::serial());
        assert!(warm, "derivation must not rebuild");
        let stats = cache.stats();
        assert_eq!(stats.builds, 1, "no full rebuild for the child");
        assert_eq!(stats.delta_appends, 1);
        assert_eq!(stats.delta_rebuild_fallbacks, 0);
        assert_eq!(stats.entries, 2);
        // Bit-identical to building the child's matrix from scratch, and the
        // group index is shared with the parent (same database).
        assert_eq!(
            *derived.precedence,
            child
                .profile()
                .precedence_matrix_with(&Parallelism::serial())
        );
        let (parent_artifacts, _) = cache.get_or_build(&parent);
        assert!(Arc::ptr_eq(&derived.groups, &parent_artifacts.groups));
        // The child entry is warm: the next lookup is a hit on the same Arcs.
        let (hit, was_hit) = cache.get_or_build(&child);
        assert!(was_hit);
        assert!(Arc::ptr_eq(&hit.precedence, &derived.precedence));
    }

    #[test]
    fn derive_retract_round_trips_to_the_parent_matrix() {
        let cache = PrecedenceCache::new();
        let parent = dataset(6, 3, "p");
        let extra = Ranking::identity(6).reversed();
        let child = appended(&parent, extra.clone(), "p+1");
        let (child_artifacts, _) = cache.get_or_build(&child);
        let deltas = [RankingDelta::Retract {
            ranking: extra,
            weight: 1,
        }];
        let (derived, warm) = cache.derive_with(&child, &parent, &deltas, &Parallelism::serial());
        assert!(warm);
        assert_eq!(cache.stats().delta_retracts, 1);
        assert_eq!(cache.stats().builds, 1);
        assert_eq!(
            *derived.precedence,
            parent
                .profile()
                .precedence_matrix_with(&Parallelism::serial())
        );
        assert!(Arc::ptr_eq(&derived.groups, &child_artifacts.groups));
    }

    #[test]
    fn derive_without_a_warm_parent_falls_back_to_a_rebuild() {
        let cache = PrecedenceCache::new();
        let parent = dataset(6, 3, "cold");
        let extra = Ranking::identity(6).reversed();
        let child = appended(&parent, extra.clone(), "cold+1");
        let deltas = [RankingDelta::Append {
            ranking: extra,
            weight: 1,
        }];
        let (derived, warm) = cache.derive_with(&parent, &child, &deltas, &Parallelism::serial());
        assert!(!warm, "cold parent must fall back");
        let stats = cache.stats();
        assert_eq!(stats.delta_rebuild_fallbacks, 1);
        assert_eq!(stats.delta_appends, 0);
        assert_eq!(stats.builds, 1, "the fallback is a full build");
        assert_eq!(
            *derived.precedence,
            child
                .profile()
                .precedence_matrix_with(&Parallelism::serial())
        );
    }

    #[test]
    fn derive_with_an_inapplicable_retract_falls_back() {
        let cache = PrecedenceCache::new();
        let parent = dataset(6, 3, "p");
        cache.get_or_build(&parent);
        // Retracting a ranking the (unanimous identity) profile cannot cover
        // underflows the matrix, so the derivation must rebuild instead.
        let absent = Ranking::identity(6).reversed();
        let mut survivors = parent.profile().rankings().to_vec();
        survivors.pop();
        let child = EngineDataset::from_arcs(
            "p-1",
            Arc::clone(parent.db()),
            Arc::new(RankingProfile::new(survivors).unwrap()),
        )
        .unwrap();
        let deltas = [RankingDelta::Retract {
            ranking: absent,
            weight: 1,
        }];
        let (derived, warm) = cache.derive_with(&parent, &child, &deltas, &Parallelism::serial());
        assert!(!warm);
        assert_eq!(cache.stats().delta_rebuild_fallbacks, 1);
        assert_eq!(cache.stats().builds, 2);
        assert_eq!(
            *derived.precedence,
            child
                .profile()
                .precedence_matrix_with(&Parallelism::serial())
        );
    }

    #[test]
    fn concurrent_lookups_build_exactly_once() {
        let cache = Arc::new(PrecedenceCache::new());
        let ds = Arc::new(dataset(20, 10, "shared"));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let cache = cache.clone();
                let ds = ds.clone();
                std::thread::spawn(move || cache.get_or_build(&ds).0)
            })
            .collect();
        let artifacts: Vec<SharedArtifacts> =
            handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(
            cache.stats().builds,
            1,
            "racing threads must share one build"
        );
        for pair in artifacts.windows(2) {
            assert!(Arc::ptr_eq(&pair[0].precedence, &pair[1].precedence));
            assert!(Arc::ptr_eq(&pair[0].groups, &pair[1].groups));
        }
    }
}
