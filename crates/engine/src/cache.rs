//! Shared-artifact cache: one precedence matrix and one group index per
//! distinct `(db, profile)` pair, shared across every method and request in a
//! batch instead of being recomputed per method.
//!
//! The precedence matrix costs `O(n² · |R|)` to build — by far the dominant
//! shared cost of the pairwise methods — so building it once per dataset and
//! handing every worker an [`std::sync::Arc`] is the engine's core speedup.
//! Construction is guarded by a per-key [`OnceLock`], so concurrent workers
//! asking for the same dataset block on a single build instead of duplicating
//! it; [`CacheStats::builds`] therefore counts exactly one build per distinct
//! dataset.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use mani_ranking::{GroupIndex, Parallelism, PrecedenceMatrix};

use crate::dataset::EngineDataset;

/// The per-dataset artifacts every method shares.
#[derive(Debug, Clone)]
pub struct SharedArtifacts {
    /// Group index over the dataset's candidate database.
    pub groups: Arc<GroupIndex>,
    /// Precedence matrix of the dataset's profile.
    pub precedence: Arc<PrecedenceMatrix>,
}

/// Counters describing cache effectiveness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheStats {
    /// Total `get_or_build` calls.
    pub lookups: u64,
    /// Calls that found fully-built artifacts.
    pub hits: u64,
    /// Number of times artifacts were actually constructed (one per distinct
    /// dataset, however many threads raced on it).
    pub builds: u64,
    /// Total wall-clock nanoseconds spent building artifacts (matrix +
    /// group-index construction), summed over all builds.
    pub build_ns: u64,
    /// Number of cached datasets.
    pub entries: usize,
}

/// A cached build together with the exact inputs it was built from, so hash
/// collisions can be detected instead of silently serving foreign artifacts.
#[derive(Debug)]
struct CacheEntry {
    db: Arc<mani_ranking::CandidateDb>,
    profile: Arc<mani_ranking::RankingProfile>,
    artifacts: SharedArtifacts,
}

impl CacheEntry {
    /// True when this entry was built from content equal to `dataset`'s
    /// (pointer equality short-circuits the deep comparison).
    fn matches(&self, dataset: &EngineDataset) -> bool {
        (Arc::ptr_eq(&self.db, dataset.db()) || *self.db == **dataset.db())
            && (Arc::ptr_eq(&self.profile, dataset.profile())
                || *self.profile == **dataset.profile())
    }
}

/// Thread-safe cache keyed by [`EngineDataset::fingerprint`].
#[derive(Debug, Default)]
pub struct PrecedenceCache {
    entries: Mutex<HashMap<u64, Arc<OnceLock<CacheEntry>>>>,
    lookups: AtomicU64,
    hits: AtomicU64,
    builds: AtomicU64,
    build_ns: AtomicU64,
}

impl PrecedenceCache {
    /// Creates an empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the dataset's shared artifacts, building them at most once per
    /// distinct dataset. The boolean is `true` when the artifacts were already
    /// built (a cache hit).
    pub fn get_or_build(&self, dataset: &EngineDataset) -> (SharedArtifacts, bool) {
        self.get_or_build_with(dataset, &Parallelism::serial())
    }

    /// [`PrecedenceCache::get_or_build`] with a kernel-parallelism budget:
    /// misses build the precedence matrix with sharded parallel construction
    /// (bit-identical to the serial build, so mixed callers share entries
    /// safely).
    pub fn get_or_build_with(
        &self,
        dataset: &EngineDataset,
        parallelism: &Parallelism,
    ) -> (SharedArtifacts, bool) {
        self.lookups.fetch_add(1, Ordering::Relaxed);
        let key = dataset.fingerprint();
        let cell = {
            let mut entries = self.entries.lock().expect("cache lock poisoned");
            entries.entry(key).or_default().clone()
        };
        let hit = cell.get().is_some();
        let entry = cell.get_or_init(|| CacheEntry {
            db: Arc::clone(dataset.db()),
            profile: Arc::clone(dataset.profile()),
            artifacts: self.build_artifacts(dataset, parallelism),
        });
        // A 64-bit fingerprint can (astronomically rarely) collide; serving
        // another dataset's matrix would corrupt every downstream result, so
        // verify the content and fall back to an uncached build on mismatch.
        if !entry.matches(dataset) {
            return (self.build_artifacts(dataset, parallelism), false);
        }
        if hit {
            self.hits.fetch_add(1, Ordering::Relaxed);
        }
        (entry.artifacts.clone(), hit)
    }

    /// Builds artifacts for a dataset, charging the build counters.
    fn build_artifacts(
        &self,
        dataset: &EngineDataset,
        parallelism: &Parallelism,
    ) -> SharedArtifacts {
        let started = Instant::now();
        self.builds.fetch_add(1, Ordering::Relaxed);
        let artifacts = SharedArtifacts {
            groups: Arc::new(GroupIndex::new(dataset.db())),
            precedence: Arc::new(dataset.profile().precedence_matrix_with(parallelism)),
        };
        self.build_ns
            .fetch_add(started.elapsed().as_nanos() as u64, Ordering::Relaxed);
        artifacts
    }

    /// Current effectiveness counters.
    pub fn stats(&self) -> CacheStats {
        CacheStats {
            lookups: self.lookups.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            builds: self.builds.load(Ordering::Relaxed),
            build_ns: self.build_ns.load(Ordering::Relaxed),
            entries: self.entries.lock().expect("cache lock poisoned").len(),
        }
    }

    /// Drops every cached dataset (counters are preserved).
    pub fn clear(&self) {
        self.entries.lock().expect("cache lock poisoned").clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mani_ranking::{CandidateDbBuilder, Ranking, RankingProfile};

    fn dataset(n: usize, m: usize, name: &str) -> EngineDataset {
        let mut b = CandidateDbBuilder::new();
        let g = b.add_attribute("G", ["x", "y"]).unwrap();
        for i in 0..n {
            b.add_candidate(format!("c{i}"), [(g, i % 2)]).unwrap();
        }
        let db = b.build().unwrap();
        let profile = RankingProfile::new(vec![Ranking::identity(n); m]).unwrap();
        EngineDataset::new(name, db, profile).unwrap()
    }

    #[test]
    fn second_lookup_hits_and_shares_the_same_allocation() {
        let cache = PrecedenceCache::new();
        let ds = dataset(6, 3, "a");
        let (first, hit_first) = cache.get_or_build(&ds);
        assert!(!hit_first, "first lookup must build");
        // Same content under a different name: still a hit on the same entry.
        let renamed = dataset(6, 3, "same-content-different-name");
        let (second, hit_second) = cache.get_or_build(&renamed);
        assert!(hit_second, "second lookup must hit");
        assert!(Arc::ptr_eq(&first.precedence, &second.precedence));
        assert!(Arc::ptr_eq(&first.groups, &second.groups));
        let stats = cache.stats();
        assert_eq!(stats.lookups, 2);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.builds, 1);
        assert_eq!(stats.entries, 1);
    }

    #[test]
    fn distinct_datasets_get_distinct_entries() {
        let cache = PrecedenceCache::new();
        let (_, hit_a) = cache.get_or_build(&dataset(6, 3, "a"));
        let (_, hit_b) = cache.get_or_build(&dataset(8, 3, "b"));
        assert!(!hit_a && !hit_b);
        let stats = cache.stats();
        assert_eq!(stats.builds, 2);
        assert_eq!(stats.entries, 2);
        cache.clear();
        assert_eq!(cache.stats().entries, 0);
    }

    #[test]
    fn concurrent_lookups_build_exactly_once() {
        let cache = Arc::new(PrecedenceCache::new());
        let ds = Arc::new(dataset(20, 10, "shared"));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let cache = cache.clone();
                let ds = ds.clone();
                std::thread::spawn(move || cache.get_or_build(&ds).0)
            })
            .collect();
        let artifacts: Vec<SharedArtifacts> =
            handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert_eq!(
            cache.stats().builds,
            1,
            "racing threads must share one build"
        );
        for pair in artifacts.windows(2) {
            assert!(Arc::ptr_eq(&pair[0].precedence, &pair[1].precedence));
            assert!(Arc::ptr_eq(&pair[0].groups, &pair[1].groups));
        }
    }
}
