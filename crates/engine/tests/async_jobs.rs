//! Integration tests for non-blocking submission: handle lifecycle,
//! bit-identical equivalence with the blocking path, and bounded-queue
//! backpressure.

use std::sync::Arc;

use mani_core::MethodKind;
use mani_engine::{
    ConsensusEngine, ConsensusRequest, EngineConfig, EngineDataset, EngineError, JobStatus,
};
use mani_fairness::FairnessThresholds;
use mani_ranking::{CandidateDbBuilder, Ranking, RankingProfile};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn dataset(n: usize, m: usize, seed: u64) -> Arc<EngineDataset> {
    let mut builder = CandidateDbBuilder::new();
    let g = builder.add_attribute("G", ["x", "y"]).unwrap();
    let r = builder.add_attribute("R", ["p", "q", "r"]).unwrap();
    for i in 0..n {
        builder
            .add_candidate(format!("c{i}"), [(g, i % 2), (r, i % 3)])
            .unwrap();
    }
    let db = builder.build().unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    let rankings: Vec<Ranking> = (0..m).map(|_| Ranking::random(n, &mut rng)).collect();
    let profile = RankingProfile::new(rankings).unwrap();
    Arc::new(EngineDataset::new(format!("async-{n}-{seed}"), db, profile).unwrap())
}

const METHODS: [MethodKind; 4] = [
    MethodKind::FairBorda,
    MethodKind::FairCopeland,
    MethodKind::FairSchulze,
    MethodKind::PickFairestPerm,
];

#[test]
fn async_handle_is_bit_identical_to_blocking_submit() {
    let blocking_engine = ConsensusEngine::with_config(EngineConfig {
        threads: 2,
        ..EngineConfig::default()
    });
    let async_engine = ConsensusEngine::with_config(EngineConfig {
        threads: 4,
        ..EngineConfig::default()
    });
    let ds = dataset(18, 8, 42);
    let request =
        || ConsensusRequest::new(Arc::clone(&ds), METHODS, FairnessThresholds::uniform(0.15));

    let blocking = blocking_engine.submit(request());
    let handle = async_engine.submit_async(request()).expect("empty queue");
    let asynchronous = handle.wait();

    assert!(blocking.is_complete() && asynchronous.is_complete());
    assert_eq!(blocking.results.len(), asynchronous.results.len());
    for (b, a) in blocking.successes().zip(asynchronous.successes()) {
        assert_eq!(b.method, a.method, "methods must arrive in request order");
        assert_eq!(
            b.outcome.ranking,
            a.outcome.ranking,
            "{}: async ranking differs from blocking submit",
            b.method.name()
        );
        assert_eq!(
            b.outcome.pd_loss, a.outcome.pd_loss,
            "bit-identical PD loss"
        );
        assert_eq!(
            b.outcome.criteria.is_satisfied(),
            a.outcome.criteria.is_satisfied()
        );
        assert_eq!(b.outcome.correction_swaps, a.outcome.correction_swaps);
    }
}

#[test]
fn queue_overflow_returns_overloaded_instead_of_blocking() {
    // One worker, queue depth one: while the first (heavyweight) job holds its
    // slot, the very next submission must be rejected — not queued, not blocked.
    let engine = ConsensusEngine::with_config(EngineConfig {
        threads: 1,
        queue_depth: 1,
        ..EngineConfig::default()
    });
    // Large enough that its precedence build + O(n³) Schulze outlives the
    // microseconds until the second submit below.
    let heavy = dataset(150, 12, 7);
    let first = engine
        .submit_async(ConsensusRequest::new(
            Arc::clone(&heavy),
            [MethodKind::FairSchulze],
            FairnessThresholds::uniform(0.2),
        ))
        .expect("first job fills the queue");

    let rejected = engine.submit_async(ConsensusRequest::new(
        dataset(8, 4, 8),
        [MethodKind::FairBorda],
        FairnessThresholds::uniform(0.2),
    ));
    match rejected {
        Err(EngineError::Overloaded {
            in_flight,
            queue_depth,
        }) => {
            assert_eq!(in_flight, 1);
            assert_eq!(queue_depth, 1);
        }
        other => panic!("expected Overloaded, got {other:?}"),
    }
    let stats = engine.stats();
    assert_eq!(stats.rejected, 1);
    assert_eq!(stats.in_flight, 1);

    // Draining the queue restores capacity.
    assert!(first.wait().is_complete());
    assert_eq!(engine.stats().in_flight, 0);
    let accepted = engine
        .submit_async(ConsensusRequest::new(
            dataset(8, 4, 9),
            [MethodKind::FairBorda],
            FairnessThresholds::uniform(0.2),
        ))
        .expect("drained queue accepts again");
    assert!(accepted.wait().is_complete());
}

#[test]
fn wait_timeout_expires_on_slow_jobs_and_status_progresses() {
    let engine = ConsensusEngine::with_config(EngineConfig {
        threads: 1,
        ..EngineConfig::default()
    });
    let handle = engine
        .submit_async(ConsensusRequest::new(
            dataset(150, 12, 11),
            [MethodKind::FairSchulze],
            FairnessThresholds::uniform(0.2),
        ))
        .expect("empty queue");
    assert_eq!(handle.id().to_string(), "job-1");
    // A 1 ms timeout cannot cover an O(n³) solve on n = 150.
    assert!(handle
        .wait_timeout(std::time::Duration::from_millis(1))
        .is_none());
    assert_ne!(handle.status(), JobStatus::Done);

    let response = handle.wait();
    assert!(response.is_complete());
    assert_eq!(handle.status(), JobStatus::Done);
    assert!(handle
        .wait_timeout(std::time::Duration::from_millis(1))
        .is_some());
    // try_poll keeps returning the same shared response.
    let a = handle.try_poll().unwrap();
    let b = handle.try_poll().unwrap();
    assert!(Arc::ptr_eq(&a, &b));
}

#[test]
fn async_jobs_share_the_precedence_cache_across_handles() {
    let engine = ConsensusEngine::with_config(EngineConfig {
        threads: 4,
        ..EngineConfig::default()
    });
    let shared = dataset(16, 6, 99);
    let handles = engine
        .submit_batch_async(
            (0..4)
                .map(|i| {
                    ConsensusRequest::new(
                        Arc::clone(&shared),
                        [METHODS[i % METHODS.len()]],
                        FairnessThresholds::uniform(0.2),
                    )
                })
                .collect(),
        )
        .expect("four jobs fit the default queue");
    assert_eq!(handles.len(), 4);
    for handle in &handles {
        assert!(handle.wait().is_complete());
    }
    assert_eq!(
        engine.cache().stats().builds,
        1,
        "four async jobs over one dataset build one matrix"
    );
    let stats = engine.stats();
    assert_eq!(stats.submitted, 4);
    assert_eq!(stats.completed, 4);
    assert_eq!(stats.in_flight, 0);
}
