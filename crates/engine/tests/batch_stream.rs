//! Integration tests for streaming batch delivery: as-completed ordering,
//! bit-identical equivalence with the blocking batch path, and the engine's
//! per-batch progress counters.

use std::sync::Arc;
use std::time::Duration;

use mani_core::MethodKind;
use mani_engine::{ConsensusEngine, ConsensusRequest, EngineConfig, EngineDataset, EngineError};
use mani_fairness::FairnessThresholds;
use mani_ranking::{CandidateDbBuilder, Ranking, RankingProfile};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn dataset(n: usize, m: usize, seed: u64) -> Arc<EngineDataset> {
    let mut builder = CandidateDbBuilder::new();
    let g = builder.add_attribute("G", ["x", "y"]).unwrap();
    for i in 0..n {
        builder
            .add_candidate(format!("c{i}"), [(g, i % 2)])
            .unwrap();
    }
    let db = builder.build().unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    let rankings: Vec<Ranking> = (0..m).map(|_| Ranking::random(n, &mut rng)).collect();
    let profile = RankingProfile::new(rankings).unwrap();
    Arc::new(EngineDataset::new(format!("stream-{n}-{seed}"), db, profile).unwrap())
}

fn engine(threads: usize) -> ConsensusEngine {
    ConsensusEngine::with_config(EngineConfig {
        threads,
        ..EngineConfig::default()
    })
}

/// A request that finishes in microseconds.
fn cheap(seed: u64) -> ConsensusRequest {
    ConsensusRequest::new(
        dataset(8, 4, seed),
        [MethodKind::FairBorda],
        FairnessThresholds::uniform(0.2),
    )
}

/// A budgeted Fair-Kemeny request that searches long enough to lose every
/// completion race against [`cheap`], while staying bounded.
fn slow(seed: u64) -> ConsensusRequest {
    ConsensusRequest::new(
        dataset(16, 8, seed),
        [MethodKind::FairKemeny],
        FairnessThresholds::uniform(0.15),
    )
    .with_budget(60_000)
}

#[test]
fn completions_stream_in_as_completed_order() {
    let engine = engine(2);
    let mut batch = engine
        .submit_batch_streaming(vec![slow(1), cheap(2)])
        .expect("queue is empty");
    assert_eq!(batch.len(), 2);

    // The cheap Borda request (index 1) must surface while the budgeted
    // Fair-Kemeny search (index 0) is still running.
    let first = batch.wait_next().expect("two jobs are in flight");
    assert_eq!(
        first.index, 1,
        "the cheap request must complete (and stream) first"
    );
    assert!(first.response.is_complete());
    let second = batch.wait_next().expect("the slow job completes too");
    assert_eq!(second.index, 0);
    assert!(second.response.is_complete());
    assert!(batch.is_drained());
    assert!(batch.wait_next().is_none());
}

#[test]
fn streamed_responses_are_bit_identical_to_blocking_batches() {
    let methods = [
        MethodKind::FairBorda,
        MethodKind::FairCopeland,
        MethodKind::FairSchulze,
    ];
    let requests = |engine_seed: u64| {
        vec![
            ConsensusRequest::new(
                dataset(12, 6, engine_seed),
                methods,
                FairnessThresholds::uniform(0.2),
            ),
            ConsensusRequest::new(
                dataset(10, 5, engine_seed + 1),
                methods,
                FairnessThresholds::uniform(0.1),
            ),
        ]
    };

    let blocking = engine(2).submit_batch(requests(7));
    let mut batch = engine(4)
        .submit_batch_streaming(requests(7))
        .expect("queue is empty");
    let mut streamed: Vec<Option<Arc<_>>> = vec![None, None];
    while let Some(item) = batch.wait_next() {
        streamed[item.index] = Some(item.response);
    }
    for (request_index, (b, s)) in blocking.iter().zip(&streamed).enumerate() {
        let s = s.as_ref().expect("every request streamed a response");
        assert_eq!(b.dataset, s.dataset);
        assert_eq!(b.results.len(), s.results.len());
        for (br, sr) in b.successes().zip(s.successes()) {
            assert_eq!(br.method, sr.method);
            assert_eq!(
                br.outcome.ranking,
                sr.outcome.ranking,
                "request {request_index}, method {} diverged",
                br.method.name()
            );
            assert_eq!(br.outcome.pd_loss, sr.outcome.pd_loss);
        }
    }
}

#[test]
fn wait_all_timeout_returns_the_whole_batch() {
    let engine = engine(2);
    let mut batch = engine
        .submit_batch_streaming(vec![cheap(11), cheap(12), cheap(13)])
        .expect("queue is empty");
    let items = batch
        .wait_all_timeout(Duration::from_secs(30))
        .expect("three tiny solves complete well inside the deadline");
    assert_eq!(items.len(), 3);
    let mut indexes: Vec<usize> = items.iter().map(|i| i.index).collect();
    indexes.sort_unstable();
    assert_eq!(indexes, vec![0, 1, 2]);
    assert!(batch.is_drained());
}

#[test]
fn engine_stats_track_streaming_batches() {
    let engine = engine(2);
    let before = engine.stats();
    assert_eq!(before.batches_opened, 0);

    let mut batch = engine
        .submit_batch_streaming(vec![cheap(21), cheap(22)])
        .expect("queue is empty");
    assert_eq!(engine.stats().batches_opened, 1);
    let first = batch.wait_next().expect("completions arrive");
    assert!(first.response.is_complete());
    let mid = engine.stats();
    assert_eq!(mid.batch_results_yielded, 1);
    assert_eq!(mid.batches_drained, 0, "one completion is still unyielded");
    batch.wait_next().expect("second completion");
    let after = engine.stats();
    assert_eq!(after.batch_results_yielded, 2);
    assert_eq!(after.batches_drained, 1);
    // Streaming jobs ride the same async queue and release their slots.
    assert_eq!(after.in_flight, 0);
    assert_eq!(after.submitted, 2);
    assert_eq!(after.completed, 2);
}

#[test]
fn streaming_batches_share_all_or_nothing_backpressure() {
    let engine = ConsensusEngine::with_config(EngineConfig {
        threads: 1,
        queue_depth: 1,
        ..EngineConfig::default()
    });
    let err = engine
        .submit_batch_streaming(vec![cheap(31), cheap(32)])
        .unwrap_err();
    assert!(matches!(err, EngineError::Overloaded { .. }));
    let stats = engine.stats();
    assert_eq!(stats.submitted, 0, "nothing enqueued on rejection");
    assert_eq!(stats.batches_opened, 0, "no handle for a rejected batch");
}

#[test]
fn invalid_requests_stream_error_responses_immediately() {
    let engine = engine(1);
    let mut batch = engine
        .submit_batch_streaming(vec![ConsensusRequest::new(
            dataset(8, 4, 41),
            [],
            FairnessThresholds::uniform(0.2),
        )])
        .expect("queue is empty");
    let item = batch
        .wait_next_timeout(Duration::from_secs(5))
        .expect("validation failures complete without touching a worker");
    assert_eq!(item.index, 0);
    assert!(!item.response.is_complete());
    assert!(matches!(
        item.response.results[0],
        Err(EngineError::InvalidRequest(_))
    ));
}
