//! Differential tests for the binary columnar dataset codec: a columnar
//! encode → decode round trip must reproduce exactly the dataset the JSON
//! parser builds from the same rows — same fingerprint, same structure — and
//! consensus over the columnar twin must be bit-identical to the JSON twin.

use std::sync::Arc;

use mani_core::MethodKind;
use mani_engine::{EngineConfig, EngineDataset};
use mani_fairness::FairnessThresholds;
use mani_service::{
    dataset_to_value, decode_dataset, encode_dataset, method_result_json, parse_body,
    parse_dataset, render, ColumnarDataset, ConsensusSpec, Service,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A random JSON dataset document: `n` candidates over one group attribute,
/// `m` random-permutation rankings.
fn random_dataset_json(n: usize, m: usize, seed: u64) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    let candidates: Vec<String> = (0..n)
        .map(|i| {
            // Alternate groups so the protected attribute always has two
            // distinct values (the parsers reject degenerate domains).
            let group = if i % 2 == 0 { "x" } else { "y" };
            let _ = &mut rng;
            format!(r#"{{"name": "cand-{i:03}", "attributes": {{"G": "{group}"}}}}"#)
        })
        .collect();
    let rankings: Vec<String> = (0..m)
        .map(|_| {
            let mut ids: Vec<usize> = (0..n).collect();
            // Fisher-Yates over candidate indexes.
            for i in (1..n).rev() {
                let j = rng.gen_range(0..i + 1);
                ids.swap(i, j);
            }
            let names: Vec<String> = ids.iter().map(|i| format!(r#""cand-{i:03}""#)).collect();
            format!("[{}]", names.join(","))
        })
        .collect();
    format!(
        r#"{{"name": "prop", "candidates": [{}], "rankings": [{}]}}"#,
        candidates.join(","),
        rankings.join(",")
    )
}

fn json_parsed(doc: &str) -> Arc<EngineDataset> {
    parse_dataset(&parse_body(doc).expect("valid JSON")).expect("valid dataset")
}

/// Structural equality via the canonical JSON rendering (name, attribute
/// schema, candidate rows, and every ranking in order).
fn canonical(dataset: &EngineDataset) -> String {
    render(&dataset_to_value(dataset))
}

proptest! {
    #[test]
    fn prop_columnar_round_trip_matches_json_parse(
        n in 2usize..24,
        m in 1usize..12,
        seed in any::<u64>(),
    ) {
        let doc = random_dataset_json(n, m, seed);
        let from_json = json_parsed(&doc);
        let decoded = decode_dataset(&encode_dataset(&from_json)).expect("round trip");
        prop_assert_eq!(from_json.fingerprint(), decoded.fingerprint());
        prop_assert_eq!(canonical(&from_json), canonical(&decoded));
    }

    #[test]
    fn prop_weighted_columnar_expands_like_repeated_json_rankings(
        n in 2usize..12,
        seed in any::<u64>(),
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let weights: Vec<u32> = (0..3).map(|_| rng.gen_range(1..4) as u32).collect();
        let doc = random_dataset_json(n, weights.len(), seed);
        let base = json_parsed(&doc);

        // Weighted columnar document: each ranking carries a multiplicity.
        let mut columns = ColumnarDataset::from_dataset(&base);
        columns.weights = Some(weights.clone());
        let decoded = decode_dataset(&columns.encode().expect("encode")).expect("decode");

        // JSON twin: the same rankings repeated weight-many times.
        let parsed = parse_body(&doc).unwrap();
        let rankings = parsed.get("rankings").and_then(|v| v.as_array()).unwrap();
        let repeated: Vec<String> = rankings
            .iter()
            .zip(&weights)
            .flat_map(|(ranking, w)| std::iter::repeat_n(render(ranking), *w as usize))
            .collect();
        let twin_doc = format!(
            r#"{{"name": "prop", "candidates": {}, "rankings": [{}]}}"#,
            render(parsed.get("candidates").unwrap()),
            repeated.join(",")
        );
        let twin = json_parsed(&twin_doc);
        prop_assert_eq!(twin.fingerprint(), decoded.fingerprint());
        prop_assert_eq!(canonical(&twin), canonical(&decoded));
    }

    #[test]
    fn prop_consensus_is_bit_identical_across_codecs(seed in any::<u64>()) {
        let doc = random_dataset_json(6, 4, seed);
        let from_json = json_parsed(&doc);
        let from_columnar = decode_dataset(&encode_dataset(&from_json)).expect("round trip");

        let service = Service::new(
            EngineConfig { threads: 2, ..EngineConfig::default() },
            16,
        );
        let spec = |dataset: Arc<EngineDataset>| ConsensusSpec {
            dataset,
            methods: vec![MethodKind::FairBorda, MethodKind::FairCopeland],
            thresholds: FairnessThresholds::uniform(0.2),
            budget: None,
        };
        let handles = service
            .submit(&[spec(Arc::clone(&from_json)), spec(from_columnar)])
            .expect("submit");
        // Strip the volatile timing/cache fields; everything else — rankings,
        // losses, ARPs, satisfaction — must match byte for byte.
        let stable = |value: serde::Value| match value {
            serde::Value::Object(entries) => serde::Value::Object(
                entries
                    .into_iter()
                    .filter(|(k, _)| k != "duration_ms" && k != "precedence_cache_hit")
                    .collect(),
            ),
            other => other,
        };
        let rendered: Vec<Vec<String>> = handles
            .iter()
            .map(|handle| {
                let response = handle.wait();
                response
                    .results
                    .iter()
                    .map(|result| match result {
                        Ok(ok) => render(&stable(method_result_json(ok, from_json.db()))),
                        Err(e) => format!("error: {e}"),
                    })
                    .collect()
            })
            .collect();
        prop_assert_eq!(&rendered[0], &rendered[1], "codec twins must solve identically");
    }
}

#[test]
fn single_candidate_dataset_is_rejected_by_both_codecs() {
    // One candidate cannot produce the two distinct protected-attribute
    // values the parsers require; the codecs must agree on the refusal.
    let doc = r#"{"name": "solo", "candidates": [{"name": "only", "attributes": {"G": "x"}}], "rankings": [["only"]]}"#;
    let json_err = parse_dataset(&parse_body(doc).unwrap()).expect_err("JSON refuses");
    let columns = ColumnarDataset {
        name: "solo".to_string(),
        attributes: vec![("G".to_string(), vec!["x".to_string()])],
        candidates: vec![("only".to_string(), vec![0])],
        rankings: vec![vec![0]],
        weights: None,
    };
    let columnar_err = columns.encode().expect_err("columnar refuses");
    assert!(
        json_err.message.contains("at least 2"),
        "{}",
        json_err.message
    );
    assert!(
        columnar_err.message.contains("at least 2"),
        "{}",
        columnar_err.message
    );
}

#[test]
fn max_u32_ranking_ids_are_rejected_not_wrapped() {
    let doc = random_dataset_json(4, 2, 7);
    let from_json = json_parsed(&doc);
    let mut encoded = encode_dataset(&from_json);
    // Unweighted layout puts the ranking items last: 4 candidates × 2
    // rankings of u32 ids. Splice u32::MAX over the first item.
    let first_item = encoded.len() - 4 * 4 * 2;
    encoded[first_item..first_item + 4].copy_from_slice(&u32::MAX.to_le_bytes());
    let error = decode_dataset(&encoded).expect_err("out-of-range id must not decode");
    assert!(
        error.message.contains("4294967295"),
        "error names the bad id: {}",
        error.message
    );
}
