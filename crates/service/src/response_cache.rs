//! LRU response cache over `(dataset fingerprint, thresholds, method, budget)`.
//!
//! Sits *above* the engine's [`mani_engine::PrecedenceCache`]: the precedence
//! cache shares the `O(n²·|R|)` matrix between methods of one dataset, while
//! this cache memoizes entire **method outcomes** (as rendered JSON values), so
//! a replayed request is served in `O(1)` without touching the engine at all —
//! no queue slot, no worker task, no matrix build, no solve.
//!
//! Eviction is least-recently-used with a fixed entry capacity, implemented as
//! a hash map into a slab of nodes threaded on an intrusive doubly-linked
//! recency list — `get`, `insert`, and eviction are all `O(1)`. (The first
//! implementation evicted via an `O(capacity)` full-map minimum scan *while
//! holding the global mutex*: at the default 1024-entry capacity every miss
//! under churn stalled all concurrent connection workers behind that scan.)

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use serde::Value;

/// Entry capacity used when a [`ResponseCache`] is built with capacity `0`.
pub const DEFAULT_RESPONSE_CACHE_CAPACITY: usize = 1024;

/// Effectiveness counters of a [`ResponseCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResponseCacheStats {
    /// Maximum number of entries held at once.
    pub capacity: usize,
    /// Entries currently held.
    pub entries: usize,
    /// Lookups that found a value.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Values stored.
    pub insertions: u64,
    /// Entries evicted to respect the capacity.
    pub evictions: u64,
}

/// Sentinel slab index meaning "no node".
const NIL: usize = usize::MAX;

/// One slab slot: the entry plus its recency-list neighbors.
#[derive(Debug)]
struct Node {
    key: String,
    value: Arc<Value>,
    prev: usize,
    next: usize,
}

/// Map + slab + intrusive recency list. `head` is most recent, `tail` least.
#[derive(Debug)]
struct Inner {
    map: HashMap<String, usize>,
    nodes: Vec<Option<Node>>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
}

impl Inner {
    fn new() -> Self {
        Self {
            map: HashMap::new(),
            nodes: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
        }
    }

    fn node(&self, slot: usize) -> &Node {
        self.nodes[slot].as_ref().expect("live LRU slot")
    }

    fn node_mut(&mut self, slot: usize) -> &mut Node {
        self.nodes[slot].as_mut().expect("live LRU slot")
    }

    /// Unlinks `slot` from the recency list (it stays in the slab).
    fn detach(&mut self, slot: usize) {
        let (prev, next) = {
            let node = self.node(slot);
            (node.prev, node.next)
        };
        match prev {
            NIL => self.head = next,
            p => self.node_mut(p).next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.node_mut(n).prev = prev,
        }
    }

    /// Links `slot` in as the most-recently-used node.
    fn push_front(&mut self, slot: usize) {
        let old_head = self.head;
        {
            let node = self.node_mut(slot);
            node.prev = NIL;
            node.next = old_head;
        }
        match old_head {
            NIL => self.tail = slot,
            h => self.node_mut(h).prev = slot,
        }
        self.head = slot;
    }

    fn touch(&mut self, slot: usize) {
        if self.head != slot {
            self.detach(slot);
            self.push_front(slot);
        }
    }

    /// Removes the least-recently-used node, returning its slot to the free
    /// list. No-op on an empty cache.
    fn evict_tail(&mut self) -> bool {
        let slot = self.tail;
        if slot == NIL {
            return false;
        }
        self.detach(slot);
        let node = self.nodes[slot].take().expect("live LRU tail");
        self.map.remove(&node.key);
        self.free.push(slot);
        true
    }

    fn allocate(&mut self, node: Node) -> usize {
        match self.free.pop() {
            Some(slot) => {
                self.nodes[slot] = Some(node);
                slot
            }
            None => {
                self.nodes.push(Some(node));
                self.nodes.len() - 1
            }
        }
    }
}

/// A thread-safe LRU cache from canonical request keys to rendered outcomes.
#[derive(Debug)]
pub struct ResponseCache {
    inner: Mutex<Inner>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    insertions: AtomicU64,
    evictions: AtomicU64,
}

impl ResponseCache {
    /// A cache bounded to `capacity` entries (`0` means
    /// [`DEFAULT_RESPONSE_CACHE_CAPACITY`]).
    pub fn new(capacity: usize) -> Self {
        let capacity = if capacity == 0 {
            DEFAULT_RESPONSE_CACHE_CAPACITY
        } else {
            capacity
        };
        Self {
            inner: Mutex::new(Inner::new()),
            capacity,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            insertions: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    /// The configured entry bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Looks a key up, refreshing its recency on a hit. `O(1)`.
    pub fn get(&self, key: &str) -> Option<Arc<Value>> {
        let mut inner = self.inner.lock().expect("response cache lock poisoned");
        match inner.map.get(key).copied() {
            Some(slot) => {
                inner.touch(slot);
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(&inner.node(slot).value))
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Stores a value, evicting the least-recently-used entry when the
    /// capacity would be exceeded. `O(1)` — no scans under the lock.
    pub fn insert(&self, key: impl Into<String>, value: Arc<Value>) {
        let key = key.into();
        let mut inner = self.inner.lock().expect("response cache lock poisoned");
        self.insertions.fetch_add(1, Ordering::Relaxed);
        if let Some(slot) = inner.map.get(&key).copied() {
            inner.node_mut(slot).value = value;
            inner.touch(slot);
            return;
        }
        if inner.map.len() >= self.capacity && inner.evict_tail() {
            self.evictions.fetch_add(1, Ordering::Relaxed);
        }
        let slot = inner.allocate(Node {
            key: key.clone(),
            value,
            prev: NIL,
            next: NIL,
        });
        inner.map.insert(key, slot);
        inner.push_front(slot);
    }

    /// Current effectiveness counters.
    pub fn stats(&self) -> ResponseCacheStats {
        ResponseCacheStats {
            capacity: self.capacity,
            entries: self
                .inner
                .lock()
                .expect("response cache lock poisoned")
                .map
                .len(),
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            insertions: self.insertions.load(Ordering::Relaxed),
            evictions: self.evictions.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn value(tag: u64) -> Arc<Value> {
        Arc::new(Value::UInt(tag))
    }

    #[test]
    fn hit_miss_and_stats() {
        let cache = ResponseCache::new(4);
        assert!(cache.get("a").is_none());
        cache.insert("a", value(1));
        let got = cache.get("a").expect("hit");
        assert_eq!(*got, Value::UInt(1));
        let stats = cache.stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.insertions, 1);
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.capacity, 4);
    }

    #[test]
    fn zero_capacity_uses_default() {
        assert_eq!(
            ResponseCache::new(0).capacity(),
            DEFAULT_RESPONSE_CACHE_CAPACITY
        );
    }

    #[test]
    fn lru_evicts_least_recently_used() {
        let cache = ResponseCache::new(2);
        cache.insert("a", value(1));
        cache.insert("b", value(2));
        // Touch `a` so `b` is the LRU entry.
        assert!(cache.get("a").is_some());
        cache.insert("c", value(3));
        assert!(cache.get("b").is_none(), "LRU entry was evicted");
        assert!(cache.get("a").is_some());
        assert!(cache.get("c").is_some());
        let stats = cache.stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.evictions, 1);
    }

    #[test]
    fn overwriting_a_key_refreshes_without_evicting() {
        let cache = ResponseCache::new(2);
        cache.insert("a", value(1));
        cache.insert("b", value(2));
        // Overwrite `a`: it becomes most recent; nothing is evicted.
        cache.insert("a", value(10));
        assert_eq!(cache.stats().entries, 2);
        assert_eq!(cache.stats().evictions, 0);
        assert_eq!(*cache.get("a").unwrap(), Value::UInt(10));
        // `b` is now least recent and goes first.
        cache.insert("c", value(3));
        assert!(cache.get("b").is_none());
        assert!(cache.get("a").is_some());
    }

    #[test]
    fn capacity_bounds_entries_under_churn() {
        let cache = ResponseCache::new(8);
        for i in 0..100u64 {
            cache.insert(format!("k{i}"), value(i));
            assert!(cache.stats().entries <= 8, "capacity must bound memory");
        }
        let stats = cache.stats();
        assert_eq!(stats.entries, 8);
        assert_eq!(stats.insertions, 100);
        assert_eq!(stats.evictions, 92);
        // The newest keys survived.
        assert!(cache.get("k99").is_some());
        assert!(cache.get("k0").is_none());
    }

    #[test]
    fn recency_list_survives_interleaved_churn() {
        // Exercise detach/push_front/evict/reuse across a mixed workload and
        // verify against a naive model.
        let capacity = 5usize;
        let cache = ResponseCache::new(capacity);
        let mut model: Vec<u64> = Vec::new(); // most recent first
        for round in 0..400u64 {
            let key = (round * 7 + round / 3) % 23;
            if round % 3 == 0 && model.contains(&key) {
                // Hit path.
                assert!(cache.get(&format!("k{key}")).is_some(), "round {round}");
                model.retain(|k| *k != key);
                model.insert(0, key);
            } else {
                cache.insert(format!("k{key}"), value(round));
                model.retain(|k| *k != key);
                model.insert(0, key);
                model.truncate(capacity);
            }
            // The model's members are exactly the cached members. Probing with
            // `get` perturbs recency identically in both (hits move to front).
            for k in 0..23u64 {
                let cached = cache.get(&format!("k{k}")).is_some();
                let expected = model.contains(&k);
                assert_eq!(cached, expected, "round {round}, key {k}");
                if expected {
                    model.retain(|m| *m != k);
                    model.insert(0, k);
                }
            }
        }
        assert_eq!(cache.stats().entries, capacity);
    }
}
