//! Request latency histograms for the stats and metrics operations.
//!
//! Each endpoint gets one [`LatencyHistogram`]: fixed log-spaced buckets (so
//! recording is a single atomic increment on the hot path — no allocation, no
//! lock) plus a sample count and a total, enough to read rate, mean, and tail
//! shape off the stats operation under load. Transport-side counters (the
//! connection pool) stay in the transport crate; the service only renders the
//! snapshot it is handed.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Histogram bucket upper bounds, in microseconds (log-spaced). A final
/// implicit overflow bucket catches everything slower than the last bound.
pub const LATENCY_BUCKET_BOUNDS_US: [u64; 12] = [
    100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 50_000, 100_000, 250_000, 1_000_000,
];

/// Number of buckets including the overflow bucket.
pub const LATENCY_BUCKETS: usize = LATENCY_BUCKET_BOUNDS_US.len() + 1;

/// One fixed-bucket latency histogram. Thread-safe; recording is lock-free.
#[derive(Debug)]
pub struct LatencyHistogram {
    /// Per-bucket sample counts. `buckets[i]` counts samples with latency
    /// `≤ LATENCY_BUCKET_BOUNDS_US[i]` (and above the previous bound); the
    /// last slot counts samples slower than every bound.
    buckets: [AtomicU64; LATENCY_BUCKETS],
    count: AtomicU64,
    total_ns: AtomicU64,
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            total_ns: AtomicU64::new(0),
        }
    }

    /// Records one sample.
    pub fn record(&self, elapsed: Duration) {
        let us = elapsed.as_micros().min(u128::from(u64::MAX)) as u64;
        let slot = LATENCY_BUCKET_BOUNDS_US
            .iter()
            .position(|bound| us <= *bound)
            .unwrap_or(LATENCY_BUCKET_BOUNDS_US.len());
        self.buckets[slot].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_ns.fetch_add(
            elapsed.as_nanos().min(u128::from(u64::MAX)) as u64,
            Ordering::Relaxed,
        );
    }

    /// A consistent-enough snapshot of the counters (individual loads are
    /// relaxed; totals may trail counts by in-flight samples).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            total_ns: self.total_ns.load(Ordering::Relaxed),
        }
    }
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

/// Point-in-time copy of a [`LatencyHistogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket counts; index `i` pairs with `LATENCY_BUCKET_BOUNDS_US[i]`,
    /// the final slot is the overflow bucket.
    pub buckets: [u64; LATENCY_BUCKETS],
    /// Total samples recorded.
    pub count: u64,
    /// Sum of all recorded latencies, in nanoseconds.
    pub total_ns: u64,
}

/// Endpoint labels tracked by [`EndpointMetrics`], in render order.
/// `consensus_stream` separates streamed (NDJSON) consensus requests from
/// buffered ones: a streamed request's latency spans the whole batch drain,
/// so mixing the two in one histogram would make the buffered tail
/// unreadable.
pub const ENDPOINT_LABELS: [&str; 12] = [
    "consensus",
    "consensus_stream",
    "session",
    "audit",
    "jobs",
    "datasets",
    "dataset_patch",
    "methods",
    "stats",
    "version",
    "metrics",
    "other",
];

/// One latency histogram per endpoint (plus `other` for unrouted traffic).
#[derive(Debug, Default)]
pub struct EndpointMetrics {
    histograms: [LatencyHistogram; ENDPOINT_LABELS.len()],
}

impl EndpointMetrics {
    /// Fresh, all-zero metrics.
    pub fn new() -> Self {
        Self::default()
    }

    /// Histogram slot for a label; unknown labels map to `other`.
    fn slot(label: &str) -> usize {
        ENDPOINT_LABELS
            .iter()
            .position(|known| *known == label)
            .unwrap_or(ENDPOINT_LABELS.len() - 1)
    }

    /// Records one request against the labeled endpoint; unknown labels fall
    /// into `other`.
    pub fn record(&self, label: &str, elapsed: Duration) {
        self.histograms[Self::slot(label)].record(elapsed);
    }

    /// The histogram behind one label (unknown labels read `other`).
    pub fn histogram(&self, label: &str) -> &LatencyHistogram {
        &self.histograms[Self::slot(label)]
    }

    /// `(label, snapshot)` pairs in render order.
    pub fn snapshots(&self) -> Vec<(&'static str, HistogramSnapshot)> {
        ENDPOINT_LABELS
            .iter()
            .zip(&self.histograms)
            .map(|(label, histogram)| (*label, histogram.snapshot()))
            .collect()
    }
}

/// Point-in-time transport counters handed to the service's stats/metrics
/// renderers by the owning transport. The service never reads these itself —
/// a connection pool, an RPC listener, or the CLI each fill in what they
/// track (zeros are fine).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct TransportStats {
    /// Configured concurrent-connection bound.
    pub max_connections: u64,
    /// Configured transport worker threads.
    pub conn_threads: u64,
    /// Connections handed to the worker pool.
    pub accepted: u64,
    /// Connections turned away at the accept path.
    pub rejected_busy: u64,
    /// Exchanges served across all connections.
    pub requests: u64,
    /// Exchanges served on an already-used keep-alive connection.
    pub keepalive_reuses: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_land_in_log_spaced_buckets() {
        let histogram = LatencyHistogram::new();
        histogram.record(Duration::from_micros(50)); // ≤ 100 µs → bucket 0
        histogram.record(Duration::from_micros(100)); // boundary inclusive → bucket 0
        histogram.record(Duration::from_micros(101)); // → bucket 1 (≤ 250 µs)
        histogram.record(Duration::from_millis(3)); // → ≤ 5 ms bucket
        histogram.record(Duration::from_secs(10)); // beyond 1 s → overflow
        let snap = histogram.snapshot();
        assert_eq!(snap.count, 5);
        assert_eq!(snap.buckets[0], 2);
        assert_eq!(snap.buckets[1], 1);
        let five_ms = LATENCY_BUCKET_BOUNDS_US
            .iter()
            .position(|b| *b == 5_000)
            .unwrap();
        assert_eq!(snap.buckets[five_ms], 1);
        assert_eq!(snap.buckets[LATENCY_BUCKETS - 1], 1, "overflow bucket");
        assert_eq!(snap.buckets.iter().sum::<u64>(), snap.count);
        assert!(snap.total_ns >= 10_000_000_000);
    }

    #[test]
    fn endpoint_metrics_route_labels_and_unknowns() {
        let metrics = EndpointMetrics::new();
        metrics.record("consensus", Duration::from_micros(10));
        metrics.record("consensus", Duration::from_micros(20));
        metrics.record("stats", Duration::from_micros(10));
        metrics.record("banana", Duration::from_micros(10));
        assert_eq!(metrics.histogram("consensus").snapshot().count, 2);
        assert_eq!(metrics.histogram("stats").snapshot().count, 1);
        assert_eq!(metrics.histogram("other").snapshot().count, 1);
        let snapshots = metrics.snapshots();
        assert_eq!(snapshots.len(), ENDPOINT_LABELS.len());
        assert_eq!(snapshots[0].0, "consensus");
        let total: u64 = snapshots.iter().map(|(_, s)| s.count).sum();
        assert_eq!(total, 4);
    }
}
