//! mani-service — the transport-agnostic service core of MANI-Rank.
//!
//! This crate is the layer between the consensus engine and whatever wire
//! front-end a deployment runs: it owns the engine, the dataset registry,
//! the response cache, async-job tracking, and per-operation metrics, and
//! exposes one method per API operation on [`Service`]. Front-ends
//! (`mani-serve` over HTTP, the `mani` CLI in-process) translate their wire
//! formats into the typed values here and map [`ApiError`] kinds onto their
//! own status vocabulary.
//!
//! By design this crate contains **no transport code**: no sockets, no HTTP
//! types, no numeric wire statuses. The CI lint job greps these sources for
//! transport tokens and fails the build if any leak in.
//!
//! The [`columnar`] module defines `application/vnd.mani.columnar`, a compact
//! binary dataset representation that codec layers can negotiate as an
//! alternative to JSON uploads.

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod columnar;
pub mod error;
pub mod metrics;
pub mod registry;
pub mod response_cache;
pub mod spec;
pub mod value;

mod service;

pub use columnar::{
    decode_dataset, encode_dataset, ColumnarDataset, COLUMNAR_CONTENT_TYPE, COLUMNAR_MAGIC,
    MAX_EXPANDED_RANKINGS,
};
pub use error::{ApiError, ApiErrorKind};
pub use metrics::{
    EndpointMetrics, HistogramSnapshot, LatencyHistogram, TransportStats, ENDPOINT_LABELS,
    LATENCY_BUCKETS, LATENCY_BUCKET_BOUNDS_US,
};
pub use registry::{
    dataset_id, DatasetRegistry, RegisteredDataset, MAX_REGISTERED_DATASETS, MAX_RETAINED_VERSIONS,
};
pub use response_cache::{ResponseCache, ResponseCacheStats, DEFAULT_RESPONSE_CACHE_CAPACITY};
pub use service::{
    methods_value, version_value, BuildInfo, ConsensusReply, ConsensusStream, RequestContext,
    Service, StreamSink, WhatIfSession, MAX_TRACKED_JOBS, SLOW_RING_CAPACITY,
};
pub use spec::{
    attribute_names_json, dataset_to_value, method_result_json, parse_budget, parse_consensus_spec,
    parse_dataset, parse_methods, parse_methods_csv, ranking_names, resolve_spec_dataset,
    ConsensusSpec,
};
pub use value::{as_f64, error_body, obj, parse_body, render, s, with_entry};
