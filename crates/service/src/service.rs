//! The transport-agnostic service core.
//!
//! [`Service`] owns everything a MANI-Rank deployment shares across
//! transports — the consensus engine, the dataset registry, the response
//! cache, the async-job registry, the slow-request ring, and per-operation
//! latency histograms — and exposes one method per API operation. Methods
//! accept and return plain data ([`Value`] documents, [`ApiError`],
//! [`ConsensusReply`]); nothing in this crate names a socket, a wire status,
//! or an HTTP type, which is what lets an HTTP front-end, the CLI, and any
//! future RPC transport drive the same core (CI enforces the boundary with a
//! grep guard over this crate's sources).
//!
//! The consensus operation checks the [`ResponseCache`] first: a request
//! whose every method outcome is already cached is answered in `O(1)` without
//! touching the engine (no queue slot, no precedence build, no solve).
//! Anything else is submitted through the engine's bounded queue, so
//! admission backpressure surfaces as [`crate::ApiErrorKind::Overloaded`] and
//! each transport renders that however its wire vocabulary spells
//! "try again later".

use std::collections::HashMap;
use std::convert::Infallible;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use mani_aggregation::CopelandAggregator;
use mani_core::{MethodKind, MfcrContext};
use mani_engine::{
    BatchHandle, ConsensusEngine, ConsensusRequest, ConsensusResponse, EngineConfig, EngineDataset,
    EngineError, JobHandle, JobId, JobStatus, RankingDelta,
};
use mani_fairness::{FairnessAudit, FairnessThresholds};
use mani_obs::{PromWriter, SlowEntry, SlowRing, Span, TraceTimeline};
use mani_ranking::{CandidateDb, GroupIndex, Ranking, RankingProfile};
use serde::{Serialize, Value};

use crate::error::{ApiError, ApiErrorKind};
use crate::metrics::{EndpointMetrics, TransportStats, LATENCY_BUCKET_BOUNDS_US};
use crate::registry::{DatasetRegistry, RegisteredDataset};
use crate::response_cache::ResponseCache;
use crate::spec::{
    attribute_names_json, method_result_json, parse_consensus_spec, parse_dataset,
    resolve_spec_dataset, ConsensusSpec,
};
use crate::value::{as_f64, obj, render, s, with_entry};

/// Most jobs tracked by the registry before completed ones are pruned
/// (oldest first), bounding registry memory under sustained async traffic.
pub const MAX_TRACKED_JOBS: usize = 4096;

/// Worst requests kept in the in-memory slow-request ring (surfaced as
/// `"slow_requests"` by the stats operation).
pub const SLOW_RING_CAPACITY: usize = 16;

/// Transport build identity rendered by the version and metrics operations.
/// The binary that embeds the service fills this in (the service crate cannot
/// know which front-end it is running inside).
#[derive(Debug, Clone, Copy)]
pub struct BuildInfo {
    /// Binary name (e.g. `mani-serve`).
    pub name: &'static str,
    /// Crate version.
    pub version: &'static str,
    /// `git describe` output baked in at build time, when available.
    pub git: Option<&'static str>,
    /// Compile profile (`debug` or `release`).
    pub profile: &'static str,
    /// Advertised feature surface.
    pub features: &'static [&'static str],
}

/// Per-request observability context, created once per dispatched request:
/// the request id (a well-formed incoming correlation id, or freshly
/// generated) and the service-side phase timeline (`parse`, `cache_probe`,
/// `submit`, `wait`, `render`) feeding the access log and the slow-request
/// ring.
#[derive(Debug, Clone)]
pub struct RequestContext {
    id: String,
    trace: Arc<TraceTimeline>,
}

impl RequestContext {
    /// A context for one request. `incoming` is the client-supplied
    /// correlation id, if any; malformed ids are replaced with generated
    /// ones.
    pub fn new(incoming: Option<&str>) -> Self {
        Self {
            id: mani_obs::request_id_from_header(incoming),
            trace: Arc::new(TraceTimeline::new()),
        }
    }

    /// The id echoed back to the client for log correlation.
    pub fn id(&self) -> &str {
        &self.id
    }

    /// The request's phase timeline.
    pub fn trace(&self) -> &Arc<TraceTimeline> {
        &self.trace
    }
}

impl Default for RequestContext {
    fn default() -> Self {
        Self::new(None)
    }
}

/// Outcome of the consensus operation: a complete document, a document
/// acknowledging still-pending async jobs (transports signal the pending
/// state out-of-band — HTTP with an Accepted status, the CLI by polling), or
/// a stream delivering one line per result as solves finish.
#[derive(Debug)]
pub enum ConsensusReply {
    /// Every spec resolved (cached or awaited); the document is final.
    Complete(Value),
    /// At least one spec was submitted without waiting; the document carries
    /// poll targets for the pending jobs.
    Accepted(Value),
    /// A `"stream": true` batch: drive it with [`Service::stream_consensus`].
    Stream(ConsensusStream),
}

/// A destination for streamed NDJSON result lines. Transports adapt their
/// write path (a chunked socket body, a buffered string, a terminal) behind
/// this trait; the service never sees the wire.
pub trait StreamSink {
    /// The sink's write failure type.
    type Error;
    /// Accepts one newline-terminated NDJSON line.
    fn emit_line(&mut self, line: &str) -> Result<(), Self::Error>;
}

/// Collecting sink used by buffered transports and tests.
impl StreamSink for String {
    type Error = Infallible;

    fn emit_line(&mut self, line: &str) -> Result<(), Self::Error> {
        self.push_str(line);
        Ok(())
    }
}

/// How one spec of a consensus request is satisfied: replayed from the
/// response cache, or submitted to the engine (index into the submitted
/// subset).
#[derive(Debug)]
enum Disposition {
    Cached(Vec<Arc<Value>>),
    Submitted(usize),
}

/// A pending `"stream": true` consensus batch: the parsed specs, the cache
/// replays, and the engine [`BatchHandle`] for everything that needs solving.
///
/// Lines are emitted cached-first (those results exist before any solve),
/// then in engine completion order; the payload of each line is built by the
/// same rendering path as the buffered operation, so streamed and
/// non-streamed results are bit-identical and equally replayable through the
/// response cache.
#[derive(Debug)]
pub struct ConsensusStream {
    specs: Vec<ConsensusSpec>,
    dispositions: Vec<Disposition>,
    batch: BatchHandle,
    /// Maps engine batch index → spec index.
    batch_to_spec: Vec<usize>,
    started: Instant,
    request_id: String,
    /// The originating request's service-side timeline (parse/submit phases).
    trace: Arc<TraceTimeline>,
}

impl ConsensusStream {
    /// Number of requests in the batch.
    pub fn len(&self) -> usize {
        self.specs.len()
    }

    /// True for an (impossible via the API) empty batch.
    pub fn is_empty(&self) -> bool {
        self.specs.is_empty()
    }

    /// When the batch was admitted (transports time the drain from here).
    pub fn started(&self) -> Instant {
        self.started
    }

    /// Correlation id of the originating request.
    pub fn request_id(&self) -> &str {
        &self.request_id
    }

    /// The originating request's phase timeline.
    pub fn trace(&self) -> &Arc<TraceTimeline> {
        &self.trace
    }

    /// Drives the stream to completion, handing each NDJSON line (newline
    /// included) to `emit` the moment it is available.
    fn emit_lines<E>(
        mut self,
        service: &Service,
        emit: &mut dyn FnMut(&str) -> Result<(), E>,
    ) -> Result<(), E> {
        let total = self.specs.len();
        let mut completed = 0usize;
        let mut cached = 0usize;
        let mut errors = 0usize;
        let mut total_solve_ms = 0f64;

        // Cache replays are complete before any solve: emit them first, in
        // request order.
        for (index, (spec, disposition)) in self.specs.iter().zip(&self.dispositions).enumerate() {
            if let Disposition::Cached(values) = disposition {
                completed += 1;
                cached += 1;
                emit(&stream_line(
                    index,
                    None,
                    cached_response_json(spec.dataset.name(), values),
                ))?;
            }
        }

        // Engine results stream in as-completed order — the whole point: a
        // cheap Fair-Borda line goes out while a budgeted Fair-Kemeny in the
        // same batch is still searching.
        while let Some(item) = self.batch.wait_next() {
            let spec_index = self.batch_to_spec[item.index];
            let spec = &self.specs[spec_index];
            let job_trace = self.batch.handles()[item.index].trace();
            let payload = {
                let _render = Span::enter(&job_trace, "render");
                service.rendered_response(spec, &item.response)
            };
            completed += 1;
            if !item.response.is_complete() {
                errors += 1;
            }
            total_solve_ms += item.response.total_solve_time.as_secs_f64() * 1e3;
            emit(&stream_line(spec_index, Some(item.id), payload))?;
        }

        // Terminal summary line with batch totals.
        let summary = obj(vec![
            ("summary", Value::Bool(true)),
            ("requests", Value::UInt(total as u64)),
            ("completed", Value::UInt(completed as u64)),
            ("cached", Value::UInt(cached as u64)),
            ("errors", Value::UInt(errors as u64)),
            ("total_solve_time_ms", Value::Float(total_solve_ms)),
        ]);
        emit(&format!("{}\n", render(&summary)))
    }
}

/// One NDJSON result line: the per-request payload prefixed with its batch
/// `index` and `job_id` (`null` for cache replays, which never reach the
/// engine).
fn stream_line(index: usize, job: Option<JobId>, payload: Value) -> String {
    let mut entries = vec![
        ("index".to_string(), Value::UInt(index as u64)),
        (
            "job_id".to_string(),
            match job {
                Some(id) => Value::String(id.to_string()),
                None => Value::Null,
            },
        ),
    ];
    match payload {
        Value::Object(fields) => entries.extend(fields),
        other => entries.push(("payload".to_string(), other)),
    }
    format!("{}\n", render(&Value::Object(entries)))
}

/// The response object for a spec whose every method outcome came from the
/// response cache (shared by the buffered and streaming paths).
fn cached_response_json(dataset: &str, values: &[Arc<Value>]) -> Value {
    obj(vec![
        ("dataset", s(dataset)),
        ("status", s(JobStatus::Done.label())),
        ("cached", Value::Bool(true)),
        (
            "results",
            Value::Array(
                values
                    .iter()
                    .map(|v| with_entry((**v).clone(), "cached", Value::Bool(true)))
                    .collect(),
            ),
        ),
    ])
}

/// One validated what-if edit: the dataset state after the edit and the
/// ranking deltas that produced it from the previous state.
#[derive(Debug)]
struct SessionStep {
    dataset: Arc<EngineDataset>,
    deltas: Vec<RankingDelta>,
}

/// A live what-if session: a base dataset plus a validated edit script,
/// solved edit-by-edit with delta-derived precedence matrices and streamed
/// as one NDJSON line per edit (see [`Service::session`]).
#[derive(Debug)]
pub struct WhatIfSession {
    base: Arc<EngineDataset>,
    steps: Vec<SessionStep>,
    methods: Vec<MethodKind>,
    thresholds: FairnessThresholds,
    budget: Option<u64>,
    started: Instant,
    request_id: String,
    trace: Arc<TraceTimeline>,
}

impl WhatIfSession {
    /// Number of edits in the session.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// True for an (impossible via the API) empty session.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }

    /// When the session was admitted (transports time the drain from here).
    pub fn started(&self) -> Instant {
        self.started
    }

    /// Correlation id of the originating request.
    pub fn request_id(&self) -> &str {
        &self.request_id
    }

    /// The originating request's phase timeline.
    pub fn trace(&self) -> &Arc<TraceTimeline> {
        &self.trace
    }

    /// Drives the session to completion: per edit, derive the edited state's
    /// precedence matrix from its parent's (delta fold; a cold parent costs
    /// one full build, after which every subsequent edit derives), solve or
    /// replay from the response cache, and emit one NDJSON line.
    fn emit_lines<E>(
        self,
        service: &Service,
        emit: &mut dyn FnMut(&str) -> Result<(), E>,
    ) -> Result<(), E> {
        let total = self.steps.len();
        let mut derived = 0usize;
        let mut rebuilds = 0usize;
        let mut cached = 0usize;
        let mut errors = 0usize;
        let mut total_solve_ms = 0f64;
        let mut parent = Arc::clone(&self.base);
        for (index, step) in self.steps.into_iter().enumerate() {
            let (_, from_delta) = service.engine.cache().derive_with(
                &parent,
                &step.dataset,
                &step.deltas,
                &service.engine.kernel_parallelism(),
            );
            if from_delta {
                derived += 1;
            } else {
                rebuilds += 1;
            }
            let spec = ConsensusSpec {
                dataset: Arc::clone(&step.dataset),
                methods: self.methods.clone(),
                thresholds: self.thresholds.clone(),
                budget: self.budget,
            };
            // An edit state already solved (here or by any other request with
            // identical content) replays from the response cache.
            let mut hits = Vec::with_capacity(spec.methods.len());
            let all_cached = spec.methods.iter().all(|method| {
                match service.cache.get(&spec.cache_key(*method)) {
                    Some(value) => {
                        hits.push(value);
                        true
                    }
                    None => false,
                }
            });
            let payload = if all_cached {
                cached += 1;
                cached_response_json(spec.dataset.name(), &hits)
            } else {
                match service.submit(std::slice::from_ref(&spec)) {
                    Ok(handles) => {
                        let response = handles[0].wait();
                        if !response.is_complete() {
                            errors += 1;
                        }
                        total_solve_ms += response.total_solve_time.as_secs_f64() * 1e3;
                        service.rendered_response(&spec, &response)
                    }
                    Err(error) => {
                        // The stream head is already committed: an admission
                        // failure becomes an error line, not a failed
                        // request, and later edits still run.
                        errors += 1;
                        obj(vec![
                            ("error", s(error.message)),
                            ("kind", s(error.kind.label())),
                        ])
                    }
                }
            };
            emit(&session_line(index, &step.dataset, from_delta, payload))?;
            parent = step.dataset;
        }
        let summary = obj(vec![
            ("summary", Value::Bool(true)),
            ("edits", Value::UInt(total as u64)),
            ("derived", Value::UInt(derived as u64)),
            ("rebuilds", Value::UInt(rebuilds as u64)),
            ("cached", Value::UInt(cached as u64)),
            ("errors", Value::UInt(errors as u64)),
            ("total_solve_time_ms", Value::Float(total_solve_ms)),
        ]);
        emit(&format!("{}\n", render(&summary)))
    }
}

/// One NDJSON session line: the edit index, the edited state's content
/// fingerprint and profile size, whether its matrix was delta-derived, and
/// the solve payload.
fn session_line(index: usize, dataset: &EngineDataset, derived: bool, payload: Value) -> String {
    let mut entries = vec![
        ("edit".to_string(), Value::UInt(index as u64)),
        (
            "fingerprint".to_string(),
            Value::String(format!("{:016x}", dataset.fingerprint())),
        ),
        (
            "rankings".to_string(),
            Value::UInt(dataset.num_rankings() as u64),
        ),
        ("derived".to_string(), Value::Bool(derived)),
    ];
    match payload {
        Value::Object(fields) => entries.extend(fields),
        other => entries.push(("payload".to_string(), other)),
    }
    format!("{}\n", render(&Value::Object(entries)))
}

/// One tracked async job: its handle plus what is needed to render and cache
/// its response when a poll observes completion.
#[derive(Debug)]
struct JobEntry {
    handle: JobHandle,
    dataset: Arc<EngineDataset>,
    cache_keys: Vec<String>,
    cached: AtomicBool,
    /// Correlation id of the submitting request, surfaced by the job and
    /// trace operations so a poll can be matched with the original access
    /// log line.
    request_id: String,
}

/// Everything one MANI-Rank deployment shares across transports.
#[derive(Debug)]
pub struct Service {
    engine: ConsensusEngine,
    cache: ResponseCache,
    datasets: DatasetRegistry,
    metrics: EndpointMetrics,
    jobs: Mutex<HashMap<u64, JobEntry>>,
    slow: SlowRing,
    started: Instant,
}

impl Service {
    /// Builds the service: an engine with `engine_config` and a response
    /// cache bounded to `cache_capacity` entries (`0` = default).
    pub fn new(engine_config: EngineConfig, cache_capacity: usize) -> Self {
        Self {
            engine: ConsensusEngine::with_config(engine_config),
            cache: ResponseCache::new(cache_capacity),
            datasets: DatasetRegistry::default(),
            metrics: EndpointMetrics::new(),
            jobs: Mutex::new(HashMap::new()),
            slow: SlowRing::new(SLOW_RING_CAPACITY),
            started: Instant::now(),
        }
    }

    /// The underlying engine.
    pub fn engine(&self) -> &ConsensusEngine {
        &self.engine
    }

    /// The response cache.
    pub fn response_cache(&self) -> &ResponseCache {
        &self.cache
    }

    /// The persisted dataset registry behind the datasets operations.
    pub fn datasets(&self) -> &DatasetRegistry {
        &self.datasets
    }

    /// Per-operation request latency histograms (transports record into
    /// these when an exchange finishes).
    pub fn metrics(&self) -> &EndpointMetrics {
        &self.metrics
    }

    /// Emits the access-log line for one finished exchange and offers it to
    /// the slow-request ring. `status` is whatever code the transport put on
    /// the wire (already transport vocabulary, carried opaquely here).
    pub fn observe(
        &self,
        label: &'static str,
        target: String,
        request_id: String,
        trace: &TraceTimeline,
        status: u16,
        elapsed: Duration,
    ) {
        mani_obs::debug!(
            "http",
            "request",
            req_id = request_id,
            target = target,
            status = status,
            dur_ms = format!("{:.3}", elapsed.as_secs_f64() * 1e3),
        );
        self.slow.record(SlowEntry {
            request_id,
            endpoint: label,
            target,
            status,
            duration_ns: elapsed.as_nanos().min(u128::from(u64::MAX)) as u64,
            phases: trace
                .snapshot()
                .into_iter()
                .map(|phase| (phase.name, phase.duration_ns))
                .collect(),
        });
    }

    /// Submits already-parsed specs as async jobs (the CLI's local batch
    /// path). Admission failures map to service error kinds.
    pub fn submit(&self, specs: &[ConsensusSpec]) -> Result<Vec<JobHandle>, ApiError> {
        if specs.is_empty() {
            return Ok(Vec::new());
        }
        self.engine
            .submit_batch_async(specs.iter().map(ConsensusSpec::request).collect())
            .map_err(engine_error)
    }

    /// Submits already-parsed specs as a streaming batch whose results arrive
    /// in completion order (the CLI's `--stream` path).
    pub fn submit_streaming(&self, specs: &[ConsensusSpec]) -> Result<BatchHandle, ApiError> {
        if specs.is_empty() {
            return Ok(BatchHandle::new(Vec::new()));
        }
        self.engine
            .submit_batch_streaming(specs.iter().map(ConsensusSpec::request).collect())
            .map_err(engine_error)
    }

    /// The consensus operation over a parsed JSON document: single spec or
    /// `{"requests": [...]}` batch, buffered by default, streamed with
    /// `"stream": true`, async with `"wait": false`. Service-side phases
    /// (`parse`, `cache_probe`, `submit`, `wait`, `render`) are recorded into
    /// the context's timeline.
    pub fn consensus(
        &self,
        body: &Value,
        ctx: &RequestContext,
    ) -> Result<ConsensusReply, ApiError> {
        let parse_span = Span::enter(&ctx.trace, "parse");
        let (specs, single) = match body.get("requests") {
            Some(raw) => {
                let array = raw
                    .as_array()
                    .ok_or_else(|| ApiError::invalid("`requests` must be an array"))?;
                if array.is_empty() {
                    return Err(ApiError::invalid("`requests` must not be empty"));
                }
                (
                    array
                        .iter()
                        .map(|raw| parse_consensus_spec(raw, Some(&self.datasets)))
                        .collect::<Result<Vec<_>, _>>()?,
                    false,
                )
            }
            None => (
                vec![parse_consensus_spec(body, Some(&self.datasets))?],
                true,
            ),
        };
        let wait = parse_flag(body.get("wait"), "`wait` must be a boolean")?;
        let stream_mode = parse_flag(body.get("stream"), "`stream` must be a boolean")?;
        drop(parse_span);
        self.consensus_specs(specs, single, wait, stream_mode, ctx)
    }

    /// The consensus operation over already-parsed specs (the codec layer
    /// lands here directly for non-JSON representations such as columnar
    /// uploads). `single` controls whether a one-spec reply is rendered bare
    /// or wrapped in `{"responses": [...]}`.
    pub fn consensus_specs(
        &self,
        specs: Vec<ConsensusSpec>,
        single: bool,
        wait: bool,
        stream_mode: bool,
        ctx: &RequestContext,
    ) -> Result<ConsensusReply, ApiError> {
        if stream_mode && wait {
            return Err(ApiError::invalid(
                "`stream` and `wait` are mutually exclusive: a streamed batch \
                 delivers each result as it completes",
            ));
        }

        // Probe the response cache per spec: a spec whose every method
        // outcome is cached never reaches the engine.
        let probe_span = Span::enter(&ctx.trace, "cache_probe");
        let mut to_submit: Vec<ConsensusRequest> = Vec::new();
        let mut dispositions = Vec::with_capacity(specs.len());
        for spec in &specs {
            let mut hits = Vec::with_capacity(spec.methods.len());
            let all_cached = !spec.methods.is_empty()
                && spec.methods.iter().all(|method| {
                    match self.cache.get(&spec.cache_key(*method)) {
                        Some(value) => {
                            hits.push(value);
                            true
                        }
                        None => false,
                    }
                });
            if all_cached {
                dispositions.push(Disposition::Cached(hits));
            } else {
                dispositions.push(Disposition::Submitted(to_submit.len()));
                to_submit.push(spec.request());
            }
        }
        drop(probe_span);

        if stream_mode {
            // Admission happens before the transport commits to a response
            // head: an overloaded engine still answers a clean rejection,
            // never a truncated stream.
            let batch = if to_submit.is_empty() {
                BatchHandle::new(Vec::new())
            } else {
                let _submit = Span::enter(&ctx.trace, "submit");
                self.engine
                    .submit_batch_streaming(to_submit)
                    .map_err(engine_error)?
            };
            let mut batch_to_spec = Vec::with_capacity(batch.len());
            for (spec_index, disposition) in dispositions.iter().enumerate() {
                if let Disposition::Submitted(_) = disposition {
                    batch_to_spec.push(spec_index);
                }
            }
            // Every streamed job is also registered: a client that loses its
            // transport mid-stream can recover any line it missed from the
            // jobs operation using the `job_id` values it already saw (or
            // re-send the batch, which replays from the response cache).
            for (batch_index, handle) in batch.handles().iter().enumerate() {
                self.register_job(&specs[batch_to_spec[batch_index]], handle.clone(), &ctx.id);
            }
            return Ok(ConsensusReply::Stream(ConsensusStream {
                specs,
                dispositions,
                batch,
                batch_to_spec,
                started: Instant::now(),
                request_id: ctx.id.clone(),
                trace: Arc::clone(&ctx.trace),
            }));
        }

        let handles = if to_submit.is_empty() {
            Vec::new()
        } else {
            let _submit = Span::enter(&ctx.trace, "submit");
            self.engine
                .submit_batch_async(to_submit)
                .map_err(engine_error)?
        };

        let mut any_pending = false;
        let mut rendered = Vec::with_capacity(specs.len());
        for (spec, disposition) in specs.iter().zip(dispositions) {
            rendered.push(match disposition {
                Disposition::Cached(values) => cached_response_json(spec.dataset.name(), &values),
                Disposition::Submitted(index) => {
                    let handle = &handles[index];
                    if wait {
                        let response = {
                            let _wait = Span::enter(&ctx.trace, "wait");
                            handle.wait()
                        };
                        // Rendering counts against both the request timeline
                        // and the job's own trace (it is the job's last
                        // phase before the bytes leave).
                        let job_trace = handle.trace();
                        let _render_request = Span::enter(&ctx.trace, "render");
                        let _render_job = Span::enter(&job_trace, "render");
                        self.rendered_response(spec, &response)
                    } else {
                        any_pending = true;
                        self.register_job(spec, handle.clone(), &ctx.id);
                        obj(vec![
                            ("id", s(handle.id().to_string())),
                            ("status", s(handle.status().label())),
                            ("dataset", s(spec.dataset.name())),
                            ("poll", s(format!("/v1/jobs/{}", handle.id()))),
                        ])
                    }
                }
            });
        }

        let body = if single {
            rendered
                .into_iter()
                .next()
                .expect("one spec, one rendering")
        } else {
            obj(vec![("responses", Value::Array(rendered))])
        };
        Ok(if any_pending {
            ConsensusReply::Accepted(body)
        } else {
            ConsensusReply::Complete(body)
        })
    }

    /// Drives a [`ConsensusStream`] into `sink`, one line per completion.
    pub fn stream_consensus<S: StreamSink>(
        &self,
        stream: ConsensusStream,
        sink: &mut S,
    ) -> Result<(), S::Error> {
        stream.emit_lines(self, &mut |line| sink.emit_line(line))
    }

    /// Renders a completed response for `spec`, inserting every successful
    /// method outcome into the response cache.
    fn rendered_response(&self, spec: &ConsensusSpec, response: &ConsensusResponse) -> Value {
        let mut results = Vec::with_capacity(response.results.len());
        for (index, result) in response.results.iter().enumerate() {
            results.push(match result {
                Ok(result) => {
                    let value = method_result_json(result, spec.dataset.db());
                    if let Some(method) = spec.methods.get(index) {
                        self.cache
                            .insert(spec.cache_key(*method), Arc::new(value.clone()));
                    }
                    with_entry(value, "cached", Value::Bool(false))
                }
                Err(error) => obj(vec![("error", s(error.to_string()))]),
            });
        }
        obj(vec![
            ("dataset", s(&response.dataset)),
            ("status", s(JobStatus::Done.label())),
            ("cached", Value::Bool(false)),
            ("results", Value::Array(results)),
            (
                "total_solve_time_ms",
                Value::Float(response.total_solve_time.as_secs_f64() * 1e3),
            ),
        ])
    }

    /// Tracks an async job for the jobs operation, pruning completed entries
    /// once the registry outgrows [`MAX_TRACKED_JOBS`].
    fn register_job(&self, spec: &ConsensusSpec, handle: JobHandle, request_id: &str) {
        let entry = JobEntry {
            dataset: Arc::clone(&spec.dataset),
            cache_keys: spec
                .methods
                .iter()
                .map(|method| spec.cache_key(*method))
                .collect(),
            cached: AtomicBool::new(false),
            request_id: request_id.to_string(),
            handle,
        };
        let mut jobs = self.jobs.lock().expect("job registry lock poisoned");
        jobs.insert(entry.handle.id().as_u64(), entry);
        // Only completed jobs are evictable: a queued/running job's poll
        // target was just handed to a client and must keep resolving. When
        // every tracked job is still live the registry temporarily exceeds
        // the bound (its size is then already bounded by the engine queue
        // depth).
        while jobs.len() > MAX_TRACKED_JOBS {
            let oldest_done = jobs
                .iter()
                .filter(|(_, e)| e.handle.status() == JobStatus::Done)
                .map(|(id, _)| *id)
                .min();
            match oldest_done {
                Some(id) => jobs.remove(&id),
                None => break,
            };
        }
    }

    /// The job-poll operation: current status, or the rendered results of a
    /// completed job (also populating the response cache exactly once).
    pub fn job(&self, raw_id: &str) -> Result<Value, ApiError> {
        let id = parse_job_id(raw_id)?;
        let (handle, dataset, cache_keys, already_cached, request_id) = {
            let jobs = self.jobs.lock().expect("job registry lock poisoned");
            let entry = jobs
                .get(&id)
                .ok_or_else(|| ApiError::not_found(format!("no such job `job-{id}`")))?;
            (
                entry.handle.clone(),
                Arc::clone(&entry.dataset),
                entry.cache_keys.clone(),
                entry.cached.swap(true, Ordering::AcqRel),
                entry.request_id.clone(),
            )
        };
        let Some(response) = handle.try_poll() else {
            // Not done yet: release the would-be cache claim for a later
            // poll.
            let jobs = self.jobs.lock().expect("job registry lock poisoned");
            if let Some(entry) = jobs.get(&id) {
                entry.cached.store(false, Ordering::Release);
            }
            return Ok(obj(vec![
                ("id", s(format!("job-{id}"))),
                ("status", s(handle.status().label())),
                ("dataset", s(dataset.name())),
                ("request_id", s(&request_id)),
            ]));
        };

        let mut results = Vec::with_capacity(response.results.len());
        for (index, result) in response.results.iter().enumerate() {
            results.push(match result {
                Ok(result) => {
                    let value = method_result_json(result, dataset.db());
                    if !already_cached {
                        if let Some(key) = cache_keys.get(index) {
                            self.cache.insert(key.clone(), Arc::new(value.clone()));
                        }
                    }
                    with_entry(value, "cached", Value::Bool(false))
                }
                Err(error) => obj(vec![("error", s(error.to_string()))]),
            });
        }
        Ok(obj(vec![
            ("id", s(format!("job-{id}"))),
            ("status", s(JobStatus::Done.label())),
            ("dataset", s(&response.dataset)),
            ("request_id", s(&request_id)),
            ("results", Value::Array(results)),
            (
                "total_solve_time_ms",
                Value::Float(response.total_solve_time.as_secs_f64() * 1e3),
            ),
        ]))
    }

    /// The job-trace operation: the job's phase timeline — queue wait, cache
    /// lookup or matrix build, solve, and render, each phase exactly once
    /// (merged by name) — plus the submitting request's id for log
    /// correlation.
    pub fn job_trace(&self, raw_id: &str) -> Result<Value, ApiError> {
        let id = parse_job_id(raw_id)?;
        let (handle, dataset, request_id) = {
            let jobs = self.jobs.lock().expect("job registry lock poisoned");
            let entry = jobs
                .get(&id)
                .ok_or_else(|| ApiError::not_found(format!("no such job `job-{id}`")))?;
            (
                entry.handle.clone(),
                Arc::clone(&entry.dataset),
                entry.request_id.clone(),
            )
        };
        let trace = handle.trace();
        let phases = Value::Array(
            trace
                .snapshot()
                .into_iter()
                .map(|phase| {
                    obj(vec![
                        ("name", s(phase.name)),
                        ("start_ms", Value::Float(phase.start_ns as f64 / 1e6)),
                        ("duration_ms", Value::Float(phase.duration_ns as f64 / 1e6)),
                        ("count", Value::UInt(phase.count)),
                    ])
                })
                .collect(),
        );
        Ok(obj(vec![
            ("id", s(format!("job-{id}"))),
            ("request_id", s(&request_id)),
            ("dataset", s(dataset.name())),
            ("status", s(handle.status().label())),
            ("span_ms", Value::Float(trace.span_ns() as f64 / 1e6)),
            ("age_ms", Value::Float(trace.age().as_secs_f64() * 1e3)),
            ("phases", phases),
        ]))
    }

    /// The audit operation: a per-group FPR audit of a dataset — the
    /// Fair-Copeland consensus under `delta`, the unconstrained Copeland
    /// consensus, and optionally every base ranking. Runs inline on the
    /// calling thread (audits are `O(n²)`; they do not occupy the consensus
    /// queue).
    pub fn audit(&self, body: &Value) -> Result<Value, ApiError> {
        let dataset = resolve_spec_dataset(body, Some(&self.datasets))?;
        let delta = match body.get("delta") {
            None | Some(Value::Null) => 0.1,
            Some(raw) => as_f64(raw, "`delta`")?,
        };
        let per_ranking = matches!(body.get("per_ranking"), Some(Value::Bool(true)));

        let groups = GroupIndex::new(dataset.db());
        let ctx = MfcrContext::new(
            dataset.db(),
            &groups,
            dataset.profile(),
            FairnessThresholds::uniform(delta),
        );
        let outcome = MethodKind::FairCopeland
            .instantiate()
            .solve(&ctx)
            .map_err(|e| ApiError::internal(e.to_string()))?;
        let fair = FairnessAudit::new("Fair-Copeland", &outcome.ranking, dataset.db(), &groups);
        let unconstrained = CopelandAggregator::new().consensus(dataset.profile());
        let unfair = FairnessAudit::new(
            "Copeland (unconstrained)",
            &unconstrained,
            dataset.db(),
            &groups,
        );

        let mut entries = vec![
            ("dataset", s(dataset.name())),
            ("delta", Value::Float(delta)),
            ("consensus", fair.serialize_value()),
            ("unconstrained", unfair.serialize_value()),
        ];
        let base_audits;
        if per_ranking {
            base_audits = Value::Array(
                dataset
                    .profile()
                    .rankings()
                    .iter()
                    .enumerate()
                    .map(|(index, ranking)| {
                        FairnessAudit::new(
                            format!("ranking-{index}"),
                            ranking,
                            dataset.db(),
                            &groups,
                        )
                        .serialize_value()
                    })
                    .collect(),
            );
            entries.push(("rankings", base_audits));
        }
        Ok(obj(entries))
    }

    /// The dataset-registration operation over a parsed JSON document (a
    /// bare dataset object, or `{"dataset": {...}}`).
    pub fn dataset_create(&self, body: &Value) -> Result<Value, ApiError> {
        let dataset = match body.get("dataset") {
            Some(wrapped) => parse_dataset(wrapped)?,
            None => parse_dataset(body)?,
        };
        self.register_dataset(dataset)
    }

    /// Registers an already-decoded dataset (the codec layer lands here for
    /// non-JSON representations). Ids are content fingerprints (the
    /// precedence-cache key), so registration is idempotent and registered
    /// datasets share the engine's warm matrix with identical inline uploads
    /// in any representation.
    pub fn register_dataset(&self, dataset: Arc<EngineDataset>) -> Result<Value, ApiError> {
        let (registered, created) = self.datasets.register(dataset)?;
        Ok(dataset_value(
            &registered,
            vec![("created", Value::Bool(created))],
        ))
    }

    /// The dataset-metadata operation.
    pub fn dataset_get(&self, id: &str) -> Result<Value, ApiError> {
        let registered = self.datasets.resolve_current(id)?;
        let attributes = attribute_names_json(registered.dataset.db());
        Ok(with_entry(
            dataset_value(&registered, Vec::new()),
            "attributes",
            attributes,
        ))
    }

    /// The dataset-edit operation: applies an `ops` array of `append` /
    /// `retract` ranking edits to the id's current version and installs the
    /// result as the id's next version (the id itself is stable; the returned
    /// `version` and `fingerprint` identify the new current content). The
    /// edited version's precedence matrix is derived from the parent's by
    /// folding the deltas in — `O(edits · n²)` instead of a full
    /// `O(n² · |R|)` rebuild whenever the parent's matrix is warm.
    pub fn dataset_patch(&self, id: &str, body: &Value) -> Result<Value, ApiError> {
        let parent = self.datasets.resolve_current(id)?;
        let ops = body
            .get("ops")
            .and_then(Value::as_array)
            .filter(|ops| !ops.is_empty())
            .ok_or_else(|| ApiError::invalid("a patch needs a non-empty `ops` array"))?;
        let deltas = ops
            .iter()
            .enumerate()
            .map(|(index, op)| parse_edit_op(index, op, parent.dataset.db()))
            .collect::<Result<Vec<_>, _>>()?;
        let child = apply_ranking_deltas(&parent.dataset, &deltas)?;
        let (_, derived) = self.engine.cache().derive_with(
            &parent.dataset,
            &child,
            &deltas,
            &self.engine.kernel_parallelism(),
        );
        let (appends, retracts) = deltas
            .iter()
            .fold((0u64, 0u64), |(a, r), delta| match delta {
                RankingDelta::Append { weight, .. } => (a + u64::from(*weight), r),
                RankingDelta::Retract { weight, .. } => (a, r + u64::from(*weight)),
            });
        let updated = self.datasets.update(id, child)?;
        Ok(dataset_value(
            &updated,
            vec![
                ("appends", Value::UInt(appends)),
                ("retracts", Value::UInt(retracts)),
                ("derived", Value::Bool(derived)),
            ],
        ))
    }

    /// The dataset-removal operation.
    pub fn dataset_delete(&self, id: &str) -> Result<Value, ApiError> {
        match self.datasets.remove(id) {
            Some(_) => Ok(obj(vec![("id", s(id)), ("deleted", Value::Bool(true))])),
            None => Err(ApiError::not_found(format!("no such dataset `{id}`"))),
        }
    }

    /// The what-if session operation: a base dataset (inline, by id, or a
    /// pinned version) plus an `edits` array, each edit an op object or a
    /// list of ops applied on top of the previous edit's state. The whole
    /// script is validated here, before any solve; drive the returned session
    /// with [`Service::stream_session`] to get one NDJSON line of consensus +
    /// parity results per edit. Nothing is persisted — a session explores
    /// counterfactual edits without touching the id's version chain (use the
    /// dataset patch operation to commit an edit).
    pub fn session(&self, body: &Value, ctx: &RequestContext) -> Result<WhatIfSession, ApiError> {
        let _parse = Span::enter(&ctx.trace, "parse");
        let spec = parse_consensus_spec(body, Some(&self.datasets))?;
        let edits = body
            .get("edits")
            .and_then(Value::as_array)
            .filter(|edits| !edits.is_empty())
            .ok_or_else(|| ApiError::invalid("a session needs a non-empty `edits` array"))?;
        let mut steps = Vec::with_capacity(edits.len());
        let mut parent = Arc::clone(&spec.dataset);
        for (index, edit) in edits.iter().enumerate() {
            let deltas = match edit {
                Value::Object(_) => vec![parse_edit_op(index, edit, spec.dataset.db())?],
                Value::Array(ops) if !ops.is_empty() => ops
                    .iter()
                    .map(|op| parse_edit_op(index, op, spec.dataset.db()))
                    .collect::<Result<Vec<_>, _>>()?,
                _ => {
                    return Err(ApiError::invalid(format!(
                        "edit {index} must be an op object or a non-empty array of ops"
                    )));
                }
            };
            let child = apply_ranking_deltas(&parent, &deltas)
                .map_err(|e| ApiError::new(e.kind, format!("edit {index}: {}", e.message)))?;
            steps.push(SessionStep {
                dataset: Arc::clone(&child),
                deltas,
            });
            parent = child;
        }
        Ok(WhatIfSession {
            base: Arc::clone(&spec.dataset),
            steps,
            methods: spec.methods,
            thresholds: spec.thresholds,
            budget: spec.budget,
            started: Instant::now(),
            request_id: ctx.id.clone(),
            trace: Arc::clone(&ctx.trace),
        })
    }

    /// Drives a [`WhatIfSession`] into `sink`, one line per edit plus a
    /// terminal summary.
    pub fn stream_session<S: StreamSink>(
        &self,
        session: WhatIfSession,
        sink: &mut S,
    ) -> Result<(), S::Error> {
        session.emit_lines(self, &mut |line| sink.emit_line(line))
    }

    /// The stats operation: every counter surface as one JSON document.
    /// `transport` carries whatever connection-level counters the embedding
    /// transport tracks (zeros for transports without a connection pool).
    pub fn stats(&self, transport: &TransportStats) -> Value {
        let engine = self.engine.stats();
        let precedence = self.engine.cache().stats();
        let responses = self.cache.stats();
        let jobs_tracked = self.jobs.lock().expect("job registry lock poisoned").len();
        let latency = Value::Object(
            self.metrics
                .snapshots()
                .into_iter()
                .map(|(label, snap)| {
                    (
                        label.to_string(),
                        obj(vec![
                            ("count", Value::UInt(snap.count)),
                            ("total_ms", Value::Float(snap.total_ns as f64 / 1e6)),
                            (
                                "le_us",
                                Value::Array(
                                    LATENCY_BUCKET_BOUNDS_US
                                        .iter()
                                        .map(|b| Value::UInt(*b))
                                        .collect(),
                                ),
                            ),
                            (
                                "buckets",
                                Value::Array(
                                    snap.buckets.iter().map(|c| Value::UInt(*c)).collect(),
                                ),
                            ),
                        ]),
                    )
                })
                .collect(),
        );
        obj(vec![
            (
                "engine",
                obj(vec![
                    ("threads", Value::UInt(self.engine.threads() as u64)),
                    (
                        "kernel_threads",
                        Value::UInt(self.engine.kernel_parallelism().max_threads() as u64),
                    ),
                    (
                        "kernel_tile_size",
                        Value::UInt(self.engine.kernel_parallelism().tile_size() as u64),
                    ),
                    ("queue_depth", Value::UInt(engine.queue_depth as u64)),
                    ("in_flight", Value::UInt(engine.in_flight as u64)),
                    ("submitted", Value::UInt(engine.submitted)),
                    ("completed", Value::UInt(engine.completed)),
                    ("rejected", Value::UInt(engine.rejected)),
                ]),
            ),
            (
                "kernels",
                obj(vec![
                    ("matrix_build_ns", Value::UInt(engine.matrix_build_ns)),
                    ("solve_ns", Value::UInt(engine.solve_ns)),
                    ("nodes_expanded", Value::UInt(engine.nodes_expanded)),
                    ("fw_blocked_solves", Value::UInt(engine.fw_blocked_solves)),
                    ("fw_tiles_relaxed", Value::UInt(engine.fw_tiles_relaxed)),
                    ("pair_shard_tasks", Value::UInt(engine.pair_shard_tasks)),
                    (
                        "ranking_shard_tasks",
                        Value::UInt(engine.ranking_shard_tasks),
                    ),
                ]),
            ),
            (
                "streaming",
                obj(vec![
                    ("batches_opened", Value::UInt(engine.batches_opened)),
                    ("batches_drained", Value::UInt(engine.batches_drained)),
                    ("results_yielded", Value::UInt(engine.batch_results_yielded)),
                ]),
            ),
            (
                "precedence_cache",
                obj(vec![
                    ("lookups", Value::UInt(precedence.lookups)),
                    ("hits", Value::UInt(precedence.hits)),
                    ("builds", Value::UInt(precedence.builds)),
                    ("delta_appends", Value::UInt(precedence.delta_appends)),
                    ("delta_retracts", Value::UInt(precedence.delta_retracts)),
                    (
                        "delta_rebuild_fallbacks",
                        Value::UInt(precedence.delta_rebuild_fallbacks),
                    ),
                    ("entries", Value::UInt(precedence.entries as u64)),
                ]),
            ),
            (
                "response_cache",
                obj(vec![
                    ("capacity", Value::UInt(responses.capacity as u64)),
                    ("entries", Value::UInt(responses.entries as u64)),
                    ("hits", Value::UInt(responses.hits)),
                    ("misses", Value::UInt(responses.misses)),
                    ("insertions", Value::UInt(responses.insertions)),
                    ("evictions", Value::UInt(responses.evictions)),
                ]),
            ),
            (
                "server",
                obj(vec![
                    ("max_connections", Value::UInt(transport.max_connections)),
                    ("conn_threads", Value::UInt(transport.conn_threads)),
                    ("connections_accepted", Value::UInt(transport.accepted)),
                    ("connections_rejected", Value::UInt(transport.rejected_busy)),
                    ("requests_served", Value::UInt(transport.requests)),
                    ("keepalive_reuses", Value::UInt(transport.keepalive_reuses)),
                ]),
            ),
            ("latency", latency),
            (
                "datasets_registered",
                Value::UInt(self.datasets.len() as u64),
            ),
            ("jobs_tracked", Value::UInt(jobs_tracked as u64)),
            (
                "slow_requests",
                Value::Array(
                    self.slow
                        .snapshot()
                        .into_iter()
                        .map(|entry| {
                            obj(vec![
                                ("request_id", s(&entry.request_id)),
                                ("endpoint", s(entry.endpoint)),
                                ("target", s(&entry.target)),
                                ("status", Value::UInt(u64::from(entry.status))),
                                ("duration_ms", Value::Float(entry.duration_ns as f64 / 1e6)),
                                (
                                    "phases",
                                    Value::Object(
                                        entry
                                            .phases
                                            .iter()
                                            .map(|(name, ns)| {
                                                (name.to_string(), Value::Float(*ns as f64 / 1e6))
                                            })
                                            .collect(),
                                    ),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
            (
                "uptime_seconds",
                Value::Float(self.started.elapsed().as_secs_f64()),
            ),
        ])
    }

    /// The metrics operation: the whole counter surface in Prometheus text
    /// exposition 0.0.4 — per-operation request counts and latency
    /// histograms, engine queue/job/kernel counters, worker-pool saturation,
    /// both cache layers, and the transport's connection counters.
    pub fn metrics_exposition(&self, build: &BuildInfo, transport: &TransportStats) -> String {
        let engine = self.engine.stats();
        let precedence = self.engine.cache().stats();
        let responses = self.cache.stats();
        let jobs_tracked = self.jobs.lock().expect("job registry lock poisoned").len();
        let snapshots = self.metrics.snapshots();

        let mut w = PromWriter::new();
        w.family("mani_build_info", "gauge", "Build identity (constant 1).");
        w.sample("mani_build_info", &[("version", build.version)], 1.0);
        w.gauge(
            "mani_uptime_seconds",
            "Seconds since this server state was created.",
            self.started.elapsed().as_secs_f64(),
        );

        w.family(
            "mani_http_requests_total",
            "counter",
            "HTTP requests dispatched, by endpoint label.",
        );
        for (label, snap) in &snapshots {
            w.sample(
                "mani_http_requests_total",
                &[("endpoint", *label)],
                snap.count as f64,
            );
        }
        w.family(
            "mani_http_request_duration_seconds",
            "histogram",
            "HTTP request latency, by endpoint label.",
        );
        let bounds: Vec<f64> = LATENCY_BUCKET_BOUNDS_US
            .iter()
            .map(|us| *us as f64 / 1e6)
            .collect();
        for (label, snap) in &snapshots {
            w.histogram(
                "mani_http_request_duration_seconds",
                &[("endpoint", *label)],
                &bounds,
                &snap.buckets,
                snap.total_ns as f64 / 1e9,
            );
        }

        w.counter(
            "mani_connections_accepted_total",
            "Connections handed to the worker pool.",
            transport.accepted,
        );
        w.counter(
            "mani_connections_rejected_total",
            "Connections turned away at the accept path.",
            transport.rejected_busy,
        );
        w.counter(
            "mani_requests_served_total",
            "HTTP exchanges served across all connections.",
            transport.requests,
        );
        w.counter(
            "mani_keepalive_reuses_total",
            "Exchanges served on an already-used keep-alive connection.",
            transport.keepalive_reuses,
        );
        w.gauge(
            "mani_connections_max",
            "Configured concurrent-connection bound.",
            transport.max_connections as f64,
        );
        w.gauge(
            "mani_connection_threads",
            "Configured connection worker threads.",
            transport.conn_threads as f64,
        );

        w.gauge(
            "mani_engine_queue_depth",
            "Configured engine job-queue bound.",
            engine.queue_depth as f64,
        );
        w.gauge(
            "mani_engine_jobs_in_flight",
            "Jobs admitted and not yet completed.",
            engine.in_flight as f64,
        );
        w.counter(
            "mani_engine_jobs_submitted_total",
            "Jobs admitted to the engine queue.",
            engine.submitted,
        );
        w.counter(
            "mani_engine_jobs_completed_total",
            "Jobs that finished solving.",
            engine.completed,
        );
        w.counter(
            "mani_engine_jobs_rejected_total",
            "Jobs refused because the queue was full.",
            engine.rejected,
        );
        w.family(
            "mani_engine_matrix_build_seconds_total",
            "counter",
            "Cumulative time spent building precedence matrices.",
        );
        w.sample(
            "mani_engine_matrix_build_seconds_total",
            &[],
            engine.matrix_build_ns as f64 / 1e9,
        );
        w.family(
            "mani_engine_solve_seconds_total",
            "counter",
            "Cumulative time spent inside method solvers.",
        );
        w.sample(
            "mani_engine_solve_seconds_total",
            &[],
            engine.solve_ns as f64 / 1e9,
        );
        w.counter(
            "mani_engine_nodes_expanded_total",
            "Exact-solver search nodes expanded.",
            engine.nodes_expanded,
        );
        w.counter(
            "mani_kernel_fw_blocked_solves_total",
            "Blocked (tiled) Floyd-Warshall solves, process-wide.",
            engine.fw_blocked_solves,
        );
        w.counter(
            "mani_kernel_fw_tiles_relaxed_total",
            "Tiles relaxed by blocked Floyd-Warshall solves, process-wide.",
            engine.fw_tiles_relaxed,
        );
        w.counter(
            "mani_kernel_pair_shard_tasks_total",
            "Candidate-pair shard tasks spawned by matrix/scoring kernels, process-wide.",
            engine.pair_shard_tasks,
        );
        w.counter(
            "mani_kernel_ranking_shard_tasks_total",
            "Ranking shard tasks spawned by matrix build kernels, process-wide.",
            engine.ranking_shard_tasks,
        );
        w.counter(
            "mani_engine_batches_opened_total",
            "Streaming batches opened.",
            engine.batches_opened,
        );
        w.counter(
            "mani_engine_batches_drained_total",
            "Streaming batches fully drained.",
            engine.batches_drained,
        );
        w.counter(
            "mani_engine_batch_results_yielded_total",
            "Streaming results yielded in as-completed order.",
            engine.batch_results_yielded,
        );
        w.gauge(
            "mani_pool_queued",
            "Engine worker-pool jobs waiting for a thread.",
            engine.pool_queued as f64,
        );
        w.gauge(
            "mani_pool_busy",
            "Engine worker-pool threads currently running a job.",
            engine.pool_busy as f64,
        );
        w.counter(
            "mani_pool_tasks_executed_total",
            "Engine worker-pool jobs executed to completion.",
            engine.pool_tasks_executed,
        );

        w.counter(
            "mani_precedence_cache_lookups_total",
            "Precedence-cache lookups.",
            precedence.lookups,
        );
        w.counter(
            "mani_precedence_cache_hits_total",
            "Precedence-cache hits (matrix reused).",
            precedence.hits,
        );
        w.counter(
            "mani_precedence_cache_builds_total",
            "Precedence matrices built.",
            precedence.builds,
        );
        w.counter(
            "mani_precedence_cache_delta_appends_total",
            "Ranking appends folded into delta-derived precedence matrices.",
            precedence.delta_appends,
        );
        w.counter(
            "mani_precedence_cache_delta_retracts_total",
            "Ranking retracts folded into delta-derived precedence matrices.",
            precedence.delta_retracts,
        );
        w.counter(
            "mani_precedence_cache_delta_rebuilds_total",
            "Delta derivations that fell back to a full matrix rebuild.",
            precedence.delta_rebuild_fallbacks,
        );
        w.gauge(
            "mani_precedence_cache_entries",
            "Precedence-cache resident entries.",
            precedence.entries as f64,
        );

        w.gauge(
            "mani_response_cache_capacity",
            "Response-cache entry bound.",
            responses.capacity as f64,
        );
        w.gauge(
            "mani_response_cache_entries",
            "Response-cache resident entries.",
            responses.entries as f64,
        );
        w.counter(
            "mani_response_cache_hits_total",
            "Response-cache hits.",
            responses.hits,
        );
        w.counter(
            "mani_response_cache_misses_total",
            "Response-cache misses.",
            responses.misses,
        );
        w.counter(
            "mani_response_cache_insertions_total",
            "Response-cache insertions.",
            responses.insertions,
        );
        w.counter(
            "mani_response_cache_evictions_total",
            "Response-cache LRU evictions.",
            responses.evictions,
        );

        w.gauge(
            "mani_datasets_registered",
            "Datasets resident in the registry.",
            self.datasets.len() as f64,
        );
        w.gauge(
            "mani_jobs_tracked",
            "Async jobs tracked for polling.",
            jobs_tracked as f64,
        );

        w.finish()
    }
}

/// The version operation: build identity of the embedding transport.
pub fn version_value(build: &BuildInfo) -> Value {
    obj(vec![
        ("name", s(build.name)),
        ("version", s(build.version)),
        (
            "git",
            match build.git {
                Some(describe) => s(describe),
                None => Value::Null,
            },
        ),
        ("profile", s(build.profile)),
        (
            "features",
            Value::Array(build.features.iter().copied().map(s).collect()),
        ),
    ])
}

/// The methods operation: every supported aggregation method with its paper
/// label and whether the paper proposes it.
pub fn methods_value() -> Value {
    let methods = Value::Array(
        MethodKind::all()
            .iter()
            .map(|kind| {
                obj(vec![
                    ("name", s(kind.name())),
                    ("paper_label", s(kind.paper_label())),
                    ("proposed", Value::Bool(kind.is_proposed())),
                ])
            })
            .collect(),
    );
    obj(vec![("methods", methods)])
}

/// The canonical dataset resource object every dataset operation returns:
/// the stable `id`, the monotonic `version`, this version's content
/// `fingerprint`, and the dataset's shape, plus operation-specific entries.
fn dataset_value(registered: &RegisteredDataset, extra: Vec<(&str, Value)>) -> Value {
    let dataset = &registered.dataset;
    let mut entries = vec![
        ("id", s(&registered.id)),
        ("version", Value::UInt(registered.version)),
        ("fingerprint", s(registered.fingerprint_hex())),
        ("name", s(dataset.name())),
        ("candidates", Value::UInt(dataset.num_candidates() as u64)),
        ("rankings", Value::UInt(dataset.num_rankings() as u64)),
    ];
    entries.extend(extra);
    obj(entries)
}

/// Parses one edit op — `{"op": "append"|"retract", "ranking": [names],
/// "weight"?: W}` — into a ranking delta against `db`. The ranking must be a
/// full order over the dataset's candidates; `weight` (default 1) counts how
/// many copies the op adds or removes.
fn parse_edit_op(index: usize, op: &Value, db: &CandidateDb) -> Result<RankingDelta, ApiError> {
    let kind = op.get("op").and_then(Value::as_str).ok_or_else(|| {
        ApiError::invalid(format!("op {index} needs an `op` of `append` or `retract`"))
    })?;
    let weight = match op.get("weight") {
        None | Some(Value::Null) => 1u32,
        Some(Value::UInt(w)) if (1..=u64::from(u32::MAX)).contains(w) => *w as u32,
        Some(Value::Int(w)) if (1..=i64::from(u32::MAX)).contains(w) => *w as u32,
        Some(_) => {
            return Err(ApiError::invalid(format!(
                "op {index} `weight` must be a positive integer"
            )));
        }
    };
    let names = op.get("ranking").and_then(Value::as_array).ok_or_else(|| {
        ApiError::invalid(format!(
            "op {index} needs a `ranking` array of candidate names"
        ))
    })?;
    if names.len() != db.len() {
        return Err(ApiError::invalid(format!(
            "op {index} ranking must order all {} candidates (got {})",
            db.len(),
            names.len()
        )));
    }
    let mut order = Vec::with_capacity(names.len());
    for raw in names {
        let candidate = raw.as_str().ok_or_else(|| {
            ApiError::invalid(format!("op {index} ranking entries must be strings"))
        })?;
        let id = db.candidate_by_name(candidate).ok_or_else(|| {
            ApiError::invalid(format!("op {index} names unknown candidate `{candidate}`"))
        })?;
        order.push(id);
    }
    let ranking =
        Ranking::from_order(order).map_err(|e| ApiError::invalid(format!("op {index}: {e}")))?;
    match kind {
        "append" => Ok(RankingDelta::Append { ranking, weight }),
        "retract" => Ok(RankingDelta::Retract { ranking, weight }),
        other => Err(ApiError::invalid(format!(
            "op {index} has unknown `op` `{other}` (expected `append` or `retract`)"
        ))),
    }
}

/// Applies ranking deltas to a dataset's profile, producing the edited
/// dataset (same candidate database, same name, new profile). Retracting a
/// ranking the profile does not hold enough copies of is invalid and leaves
/// nothing changed; so is editing the profile down to zero rankings.
fn apply_ranking_deltas(
    parent: &EngineDataset,
    deltas: &[RankingDelta],
) -> Result<Arc<EngineDataset>, ApiError> {
    let mut rankings = parent.profile().rankings().to_vec();
    for (index, delta) in deltas.iter().enumerate() {
        match delta {
            RankingDelta::Append { ranking, weight } => {
                rankings.extend(std::iter::repeat_with(|| ranking.clone()).take(*weight as usize));
            }
            RankingDelta::Retract { ranking, weight } => {
                for removed in 0..*weight {
                    let position =
                        rankings.iter().rposition(|r| r == ranking).ok_or_else(|| {
                            ApiError::invalid(format!(
                                "op {index} retracts {weight} cop(ies) of a ranking the \
                             profile holds only {removed} of"
                            ))
                        })?;
                    rankings.remove(position);
                }
            }
        }
    }
    if rankings.is_empty() {
        return Err(ApiError::invalid(
            "the edits would leave the dataset with no rankings",
        ));
    }
    let profile = RankingProfile::for_database(parent.db(), rankings)
        .map_err(|e| ApiError::invalid(e.to_string()))?;
    EngineDataset::from_arcs(parent.name(), Arc::clone(parent.db()), Arc::new(profile))
        .map(Arc::new)
        .map_err(|e| ApiError::internal(e.to_string()))
}

/// Maps engine admission/solve failures onto service error kinds.
fn engine_error(error: EngineError) -> ApiError {
    let kind = match error {
        EngineError::Overloaded { .. } => ApiErrorKind::Overloaded,
        _ => ApiErrorKind::Internal,
    };
    ApiError::new(kind, error.to_string())
}

/// Parses an optional boolean flag field.
fn parse_flag(value: Option<&Value>, message: &str) -> Result<bool, ApiError> {
    match value {
        None | Some(Value::Null) => Ok(false),
        Some(Value::Bool(flag)) => Ok(*flag),
        Some(_) => Err(ApiError::invalid(message)),
    }
}

/// Parses a `job-N` (or bare `N`) job id.
fn parse_job_id(raw_id: &str) -> Result<u64, ApiError> {
    raw_id
        .strip_prefix("job-")
        .unwrap_or(raw_id)
        .parse()
        .map_err(|_| ApiError::invalid(format!("malformed job id `{raw_id}`")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::parse_body;

    fn demo_body(delta: f64, wait: bool) -> Value {
        parse_body(&format!(
            r#"{{
                "dataset": {{
                    "name": "demo",
                    "candidates": [
                        {{"name": "a", "attributes": {{"G": "x"}}}},
                        {{"name": "b", "attributes": {{"G": "y"}}}},
                        {{"name": "c", "attributes": {{"G": "x"}}}},
                        {{"name": "d", "attributes": {{"G": "y"}}}}
                    ],
                    "rankings": [["a","b","c","d"], ["d","c","b","a"], ["a","c","b","d"]]
                }},
                "methods": ["Fair-Borda"],
                "delta": {delta},
                "wait": {wait}
            }}"#
        ))
        .unwrap()
    }

    fn service() -> Service {
        Service::new(
            EngineConfig {
                threads: 2,
                ..EngineConfig::default()
            },
            16,
        )
    }

    #[test]
    fn consensus_wait_and_cache_replay() {
        let service = service();
        let ctx = RequestContext::new(None);
        let first = service.consensus(&demo_body(0.2, true), &ctx).unwrap();
        let ConsensusReply::Complete(body) = first else {
            panic!("waited solve must be complete");
        };
        let text = render(&body);
        assert!(text.contains("\"cached\":false"), "{text}");
        assert!(text.contains("\"ranking\""), "{text}");
        let builds_after_first = service.engine().cache().stats().builds;
        assert_eq!(builds_after_first, 1);

        let second = service
            .consensus(&demo_body(0.2, true), &RequestContext::new(None))
            .unwrap();
        let ConsensusReply::Complete(body) = second else {
            panic!("replay must be complete");
        };
        assert!(render(&body).contains("\"cached\":true"));
        assert_eq!(
            service.engine().cache().stats().builds,
            builds_after_first,
            "replay must not build another precedence matrix"
        );
        assert_eq!(
            service.engine().stats().submitted,
            1,
            "replay must not reach the engine queue"
        );
    }

    #[test]
    fn async_jobs_are_accepted_and_pollable() {
        let service = service();
        let reply = service
            .consensus(&demo_body(0.25, false), &RequestContext::new(None))
            .unwrap();
        let ConsensusReply::Accepted(body) = reply else {
            panic!("async submit must be accepted-pending");
        };
        assert!(render(&body).contains("\"poll\":\"/v1/jobs/job-1\""));

        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            let polled = service.job("job-1").unwrap();
            let text = render(&polled);
            if text.contains("\"status\":\"done\"") {
                assert!(text.contains("\"ranking\""), "{text}");
                break;
            }
            assert!(Instant::now() < deadline, "job never completed");
            std::thread::yield_now();
        }
        let trace = render(&service.job_trace("job-1").unwrap());
        assert!(trace.contains("\"phases\""), "{trace}");
        assert_eq!(
            service.job("job-99").unwrap_err().kind,
            ApiErrorKind::NotFound
        );
        assert_eq!(
            service.job("banana").unwrap_err().kind,
            ApiErrorKind::InvalidArgument
        );
    }

    #[test]
    fn streams_emit_lines_into_a_sink() {
        let service = service();
        let mut body = demo_body(0.2, false);
        if let Value::Object(ref mut entries) = body {
            entries.retain(|(k, _)| k != "wait");
            entries.push(("stream".to_string(), Value::Bool(true)));
        }
        let reply = service
            .consensus(&body, &RequestContext::new(None))
            .unwrap();
        let ConsensusReply::Stream(stream) = reply else {
            panic!("stream mode must stream");
        };
        assert_eq!(stream.len(), 1);
        let mut collected = String::new();
        match service.stream_consensus(stream, &mut collected) {
            Ok(()) => {}
            Err(never) => match never {},
        }
        let lines: Vec<&str> = collected.lines().collect();
        assert_eq!(lines.len(), 2, "one result + summary: {collected}");
        assert!(lines[0].contains("\"job_id\""), "{}", lines[0]);
        assert!(lines[1].contains("\"summary\":true"), "{}", lines[1]);
    }

    #[test]
    fn stream_and_wait_are_mutually_exclusive() {
        let service = service();
        let mut body = demo_body(0.2, true);
        if let Value::Object(ref mut entries) = body {
            entries.push(("stream".to_string(), Value::Bool(true)));
        }
        let err = service
            .consensus(&body, &RequestContext::new(None))
            .unwrap_err();
        assert_eq!(err.kind, ApiErrorKind::InvalidArgument);
        assert!(err.message.contains("mutually exclusive"));
    }

    #[test]
    fn stats_carry_transport_counters_verbatim() {
        let service = service();
        let transport = TransportStats {
            max_connections: 7,
            conn_threads: 3,
            accepted: 11,
            rejected_busy: 1,
            requests: 29,
            keepalive_reuses: 13,
        };
        let text = render(&service.stats(&transport));
        assert!(text.contains("\"max_connections\":7"), "{text}");
        assert!(text.contains("\"requests_served\":29"), "{text}");
        assert!(text.contains("\"keepalive_reuses\":13"), "{text}");
        assert!(text.contains("\"uptime_seconds\""), "{text}");

        let build = BuildInfo {
            name: "mani-test",
            version: "0.0.0",
            git: None,
            profile: "debug",
            features: &["std-only"],
        };
        let exposition = service.metrics_exposition(&build, &transport);
        assert!(exposition.contains("mani_build_info{version=\"0.0.0\"} 1"));
        assert!(exposition.contains("mani_requests_served_total 29"));
        let version = render(&version_value(&build));
        assert!(version.contains("\"name\":\"mani-test\""), "{version}");
        assert!(version.contains("\"git\":null"), "{version}");
        let methods = render(&methods_value());
        assert!(methods.contains("\"Fair-Kemeny\""), "{methods}");
    }

    #[test]
    fn audit_compares_fair_and_unconstrained() {
        let service = service();
        let mut body = demo_body(0.2, true);
        if let Value::Object(ref mut entries) = body {
            entries.retain(|(k, _)| k == "dataset");
            entries.push(("per_ranking".to_string(), Value::Bool(true)));
        }
        let text = render(&service.audit(&body).unwrap());
        assert!(text.contains("\"consensus\""), "{text}");
        assert!(text.contains("\"unconstrained\""), "{text}");
        assert!(text.contains("ranking-0"), "{text}");
    }

    #[test]
    fn datasets_crud_round_trip() {
        let service = service();
        let body = demo_body(0.2, true);
        let dataset = body.get("dataset").unwrap();
        let created = service.dataset_create(dataset).unwrap();
        let text = render(&created);
        assert!(text.contains("\"created\":true"), "{text}");
        assert!(text.contains("\"version\":1"), "{text}");
        assert!(text.contains("\"fingerprint\":\""), "{text}");
        let id = created
            .get("id")
            .and_then(Value::as_str)
            .unwrap()
            .to_string();
        let fetched = render(&service.dataset_get(&id).unwrap());
        assert!(fetched.contains("\"attributes\":[\"G\"]"), "{fetched}");
        assert!(fetched.contains("\"version\":1"), "{fetched}");
        assert!(render(&service.dataset_delete(&id).unwrap()).contains("\"deleted\":true"));
        assert_eq!(
            service.dataset_get(&id).unwrap_err().kind,
            ApiErrorKind::NotFound
        );
    }

    /// Registers the demo dataset and returns its id.
    fn upload_demo(service: &Service) -> String {
        let body = demo_body(0.2, true);
        let created = service
            .dataset_create(body.get("dataset").unwrap())
            .unwrap();
        created
            .get("id")
            .and_then(Value::as_str)
            .unwrap()
            .to_string()
    }

    /// A waited Fair-Borda solve referencing the dataset by id.
    fn solve_by_id(id: &str) -> Value {
        parse_body(&format!(
            r#"{{"dataset": {{"id": "{id}"}}, "methods": ["Fair-Borda"], "delta": 0.2, "wait": true}}"#
        ))
        .unwrap()
    }

    #[test]
    fn dataset_patch_bumps_versions_and_derives_the_matrix() {
        let service = service();
        let id = upload_demo(&service);
        // Warm the base version's matrix.
        service
            .consensus(&solve_by_id(&id), &RequestContext::new(None))
            .unwrap();
        let builds = service.engine().cache().stats().builds;
        assert_eq!(builds, 1);

        let patch = parse_body(
            r#"{"ops": [{"op": "append", "ranking": ["d","a","b","c"], "weight": 2},
                        {"op": "retract", "ranking": ["a","c","b","d"]}]}"#,
        )
        .unwrap();
        let patched = render(&service.dataset_patch(&id, &patch).unwrap());
        assert!(patched.contains("\"version\":2"), "{patched}");
        assert!(patched.contains("\"derived\":true"), "{patched}");
        assert!(patched.contains("\"appends\":2"), "{patched}");
        assert!(patched.contains("\"retracts\":1"), "{patched}");
        assert!(patched.contains("\"rankings\":4"), "{patched}");

        // Solving the patched version reuses the delta-derived matrix: no
        // second full build, and the delta counters advanced.
        let ConsensusReply::Complete(body) = service
            .consensus(&solve_by_id(&id), &RequestContext::new(None))
            .unwrap()
        else {
            panic!("waited solve must be complete");
        };
        assert!(render(&body).contains("\"cached\":false"));
        let stats = service.engine().cache().stats();
        assert_eq!(
            stats.builds, builds,
            "patched solve must not rebuild the matrix"
        );
        assert_eq!(stats.delta_appends, 1);
        assert_eq!(stats.delta_retracts, 1);

        // Both versions stay addressable; retract of an absent ranking and
        // retracting everything are invalid and change nothing.
        assert_eq!(service.datasets().current(&id).unwrap().version, 2);
        assert_eq!(
            service
                .datasets()
                .resolve_version(&id, 1)
                .unwrap()
                .dataset
                .num_rankings(),
            3
        );
        let bad = parse_body(
            r#"{"ops": [{"op": "retract", "ranking": ["a","b","c","d"], "weight": 9}]}"#,
        )
        .unwrap();
        assert_eq!(
            service.dataset_patch(&id, &bad).unwrap_err().kind,
            ApiErrorKind::InvalidArgument
        );
        assert_eq!(service.datasets().current(&id).unwrap().version, 2);
    }

    #[test]
    fn patch_and_delete_never_replay_stale_cached_payloads() {
        let service = service();
        let id = upload_demo(&service);
        let ctx = || RequestContext::new(None);

        // Solve and replay: same content, replay is legitimate.
        let ConsensusReply::Complete(first) = service.consensus(&solve_by_id(&id), &ctx()).unwrap()
        else {
            panic!("waited solve must be complete");
        };
        assert!(render(&first).contains("\"cached\":false"));
        let ConsensusReply::Complete(replay) =
            service.consensus(&solve_by_id(&id), &ctx()).unwrap()
        else {
            panic!("replay must be complete");
        };
        assert!(render(&replay).contains("\"cached\":true"));

        // PATCH changes the content fingerprint: the next solve must miss the
        // response cache instead of replaying the pre-edit payload.
        let patch =
            parse_body(r#"{"ops": [{"op": "append", "ranking": ["d","c","b","a"], "weight": 5}]}"#)
                .unwrap();
        service.dataset_patch(&id, &patch).unwrap();
        let ConsensusReply::Complete(after_patch) =
            service.consensus(&solve_by_id(&id), &ctx()).unwrap()
        else {
            panic!("post-patch solve must be complete");
        };
        assert!(
            render(&after_patch).contains("\"cached\":false"),
            "a patched dataset must never replay its pre-edit payload: {}",
            render(&after_patch)
        );

        // DELETE: the id stops resolving entirely — no replay possible.
        service.dataset_delete(&id).unwrap();
        assert_eq!(
            service
                .consensus(&solve_by_id(&id), &ctx())
                .unwrap_err()
                .kind,
            ApiErrorKind::NotFound
        );
    }

    #[test]
    fn sessions_stream_consensus_per_edit_without_rebuilds() {
        let service = service();
        // Warm the base matrix with a plain solve so every edit derives.
        let ConsensusReply::Complete(_) = service
            .consensus(&demo_body(0.2, true), &RequestContext::new(None))
            .unwrap()
        else {
            panic!("waited solve must be complete");
        };
        let builds = service.engine().cache().stats().builds;
        assert_eq!(builds, 1);

        let mut body = demo_body(0.2, true);
        if let Value::Object(ref mut entries) = body {
            entries.retain(|(k, _)| k == "dataset" || k == "methods" || k == "delta");
            entries.push((
                "edits".to_string(),
                parse_body(
                    r#"[{"op": "append", "ranking": ["d","a","b","c"]},
                        [{"op": "retract", "ranking": ["d","a","b","c"]},
                         {"op": "append", "ranking": ["b","a","c","d"], "weight": 2}]]"#,
                )
                .unwrap(),
            ));
        }
        let session = service.session(&body, &RequestContext::new(None)).unwrap();
        assert_eq!(session.len(), 2);
        let mut collected = String::new();
        match service.stream_session(session, &mut collected) {
            Ok(()) => {}
            Err(never) => match never {},
        }
        let lines: Vec<&str> = collected.lines().collect();
        assert_eq!(lines.len(), 3, "two edits + summary: {collected}");
        assert!(lines[0].contains("\"edit\":0"), "{}", lines[0]);
        assert!(lines[0].contains("\"derived\":true"), "{}", lines[0]);
        assert!(lines[0].contains("\"ranking\""), "{}", lines[0]);
        assert!(lines[1].contains("\"edit\":1"), "{}", lines[1]);
        assert!(lines[1].contains("\"derived\":true"), "{}", lines[1]);
        assert!(lines[2].contains("\"summary\":true"), "{}", lines[2]);
        assert!(lines[2].contains("\"derived\":2"), "{}", lines[2]);
        assert!(lines[2].contains("\"rebuilds\":0"), "{}", lines[2]);

        let stats = service.engine().cache().stats();
        assert_eq!(
            stats.builds, builds,
            "what-if edits must derive, not rebuild"
        );
        assert_eq!(stats.delta_appends, 2, "one append per edit");
        assert_eq!(stats.delta_retracts, 1);
        assert_eq!(stats.delta_rebuild_fallbacks, 0);

        // Retracting a ranking the profile never held fails at parse time,
        // before any stream head is committed.
        let mut bad = demo_body(0.2, true);
        if let Value::Object(ref mut entries) = bad {
            entries.retain(|(k, _)| k == "dataset" || k == "methods" || k == "delta");
            entries.push((
                "edits".to_string(),
                parse_body(r#"[{"op": "retract", "ranking": ["b","d","a","c"], "weight": 3}]"#)
                    .unwrap(),
            ));
        }
        let err = service
            .session(&bad, &RequestContext::new(None))
            .unwrap_err();
        assert_eq!(err.kind, ApiErrorKind::InvalidArgument);
        assert!(err.message.contains("edit 0"), "{}", err.message);
    }
}
