//! `application/vnd.mani.columnar` — a compact binary dataset encoding.
//!
//! JSON uploads spend most of their bytes repeating candidate *names* once
//! per ranking entry. The columnar form names every candidate exactly once
//! and stores each ranking as a run of u32 candidate ids, which for the
//! paper's Mallows grids (thousands of rankings over the same pool) is
//! several times smaller and decodes without any string hashing on the hot
//! path.
//!
//! ## Layout (all integers little-endian)
//!
//! ```text
//! magic      8 bytes  "MANICOL1"
//! flags      u32      bit 0: a weights column follows the ranking items
//! fingerprint u64     content fingerprint of the decoded dataset
//! name       str      u32 byte length + UTF-8 bytes (dataset display name)
//! attributes u32 count, then per attribute:
//!              name str, u32 value count, each value str
//! candidates u32 count, then each candidate name str, then per attribute a
//!              column of `count` u32 value indexes (column-major)
//! rankings   u32 count
//! items      u64 total item count, then `count + 1` u64 offsets
//!              (offsets[0] = 0, offsets[count] = total), then `total` u32
//!              candidate ids (ranking `i` spans items[offsets[i]..offsets[i+1]])
//! weights    `count` u32 multiplicities — only when flags bit 0 is set
//! ```
//!
//! The trailing fingerprint check makes the format self-verifying: the
//! decoder rebuilds the dataset, recomputes [`EngineDataset::fingerprint`],
//! and rejects the upload on mismatch, so a columnar upload can never
//! silently diverge from the JSON twin it was derived from — and always
//! shares the warm precedence-matrix cache with it.
//!
//! A `weights` column declares each ranking's multiplicity (voter count).
//! The data model has no weighted profiles, so decoding expands weights into
//! repeated rankings; the expansion is bounded by [`MAX_EXPANDED_RANKINGS`].

use std::sync::Arc;

use mani_engine::EngineDataset;
use mani_ranking::{CandidateDbBuilder, Ranking, RankingProfile};

use crate::error::ApiError;

/// Media type identifying the columnar encoding in content negotiation.
pub const COLUMNAR_CONTENT_TYPE: &str = "application/vnd.mani.columnar";

/// Magic bytes opening every columnar document (format version 1).
pub const COLUMNAR_MAGIC: [u8; 8] = *b"MANICOL1";

/// Flag bit: a weights column follows the ranking items.
const FLAG_WEIGHTS: u32 = 1;

/// Most rankings a weighted document may expand to. Bounds decoder memory
/// the same way the transport's body cap bounds parse memory.
pub const MAX_EXPANDED_RANKINGS: usize = 1 << 20;

/// In-memory form of a columnar document: the dataset as columns, before it
/// is reassembled into an [`EngineDataset`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColumnarDataset {
    /// Dataset display name.
    pub name: String,
    /// Protected attributes: `(name, value domain in declared order)`.
    pub attributes: Vec<(String, Vec<String>)>,
    /// Candidates: `(name, one value index per attribute)`.
    pub candidates: Vec<(String, Vec<u32>)>,
    /// Rankings as u32 candidate ids, best first.
    pub rankings: Vec<Vec<u32>>,
    /// Optional per-ranking multiplicities (`None` means every ranking
    /// counts once).
    pub weights: Option<Vec<u32>>,
}

impl ColumnarDataset {
    /// Extracts the columns of an existing dataset (unweighted).
    pub fn from_dataset(dataset: &EngineDataset) -> Self {
        let db = dataset.db();
        let attributes: Vec<(String, Vec<String>)> = db
            .schema()
            .attributes()
            .map(|(_, attribute)| {
                (
                    attribute.name().to_string(),
                    attribute.values().map(str::to_string).collect(),
                )
            })
            .collect();
        let candidates = db
            .candidates()
            .map(|(_, candidate)| {
                (
                    candidate.name().to_string(),
                    candidate
                        .values()
                        .iter()
                        .map(|v| v.index() as u32)
                        .collect(),
                )
            })
            .collect();
        let rankings = dataset
            .profile()
            .rankings()
            .iter()
            .map(|ranking| ranking.iter().map(|id| id.0).collect())
            .collect();
        Self {
            name: dataset.name().to_string(),
            attributes,
            candidates,
            rankings,
            weights: None,
        }
    }

    /// Reassembles the columns into a validated [`EngineDataset`], expanding
    /// weights into repeated rankings.
    pub fn to_dataset(&self) -> Result<Arc<EngineDataset>, ApiError> {
        let mut builder = CandidateDbBuilder::new();
        let mut attribute_ids = Vec::with_capacity(self.attributes.len());
        for (name, values) in &self.attributes {
            // Mirror the JSON parser's rule so the two codecs accept exactly
            // the same datasets.
            if values.len() < 2 {
                return Err(ApiError::invalid(format!(
                    "columnar: attribute `{name}` has {} distinct value(s); protected attributes need at least 2",
                    values.len()
                )));
            }
            let id = builder
                .add_attribute(name.clone(), values.iter().map(String::as_str))
                .map_err(|e| ApiError::invalid(format!("columnar: {e}")))?;
            attribute_ids.push(id);
        }
        let num_candidates = self.candidates.len();
        for (name, values) in &self.candidates {
            if values.len() != attribute_ids.len() {
                return Err(ApiError::invalid(format!(
                    "columnar: candidate `{name}` has {} value(s) for {} attribute(s)",
                    values.len(),
                    attribute_ids.len()
                )));
            }
            builder
                .add_candidate(
                    name.clone(),
                    attribute_ids
                        .iter()
                        .copied()
                        .zip(values.iter().map(|v| *v as usize)),
                )
                .map_err(|e| ApiError::invalid(format!("columnar: {e}")))?;
        }
        let db = builder
            .build()
            .map_err(|e| ApiError::invalid(format!("columnar: {e}")))?;

        if let Some(weights) = &self.weights {
            if weights.len() != self.rankings.len() {
                return Err(ApiError::invalid(format!(
                    "columnar: {} weight(s) for {} ranking(s)",
                    weights.len(),
                    self.rankings.len()
                )));
            }
        }
        let mut expanded_total = 0usize;
        let mut parsed = Vec::with_capacity(self.rankings.len());
        for (index, ids) in self.rankings.iter().enumerate() {
            if let Some(&bad) = ids.iter().find(|id| **id as usize >= num_candidates) {
                return Err(ApiError::invalid(format!(
                    "columnar: ranking {index} names candidate id {bad}, but only {num_candidates} candidate(s) exist"
                )));
            }
            let ranking = Ranking::from_ids(ids.iter().copied())
                .map_err(|e| ApiError::invalid(format!("columnar: ranking {index}: {e}")))?;
            let weight = match &self.weights {
                Some(weights) => weights[index] as usize,
                None => 1,
            };
            if weight == 0 {
                return Err(ApiError::invalid(format!(
                    "columnar: ranking {index} has weight 0; drop it instead"
                )));
            }
            expanded_total = expanded_total.saturating_add(weight);
            if expanded_total > MAX_EXPANDED_RANKINGS {
                return Err(ApiError::invalid(format!(
                    "columnar: weights expand to more than {MAX_EXPANDED_RANKINGS} rankings"
                )));
            }
            for _ in 1..weight {
                parsed.push(ranking.clone());
            }
            parsed.push(ranking);
        }
        let profile = RankingProfile::for_database(&db, parsed)
            .map_err(|e| ApiError::invalid(format!("columnar: {e}")))?;
        EngineDataset::new(self.name.clone(), db, profile)
            .map(Arc::new)
            .map_err(|e| ApiError::invalid(format!("columnar: {e}")))
    }

    /// Encodes the columns to wire bytes. The header fingerprint is computed
    /// by materializing the dataset, so an inconsistent column set fails here
    /// rather than producing an undecodable document.
    pub fn encode(&self) -> Result<Vec<u8>, ApiError> {
        let fingerprint = self.to_dataset()?.fingerprint();
        Ok(self.encode_with_fingerprint(fingerprint))
    }

    fn encode_with_fingerprint(&self, fingerprint: u64) -> Vec<u8> {
        let mut w = Writer::default();
        w.bytes(&COLUMNAR_MAGIC);
        let flags = if self.weights.is_some() {
            FLAG_WEIGHTS
        } else {
            0
        };
        w.u32(flags);
        w.u64(fingerprint);
        w.str(&self.name);
        w.u32(self.attributes.len() as u32);
        for (name, values) in &self.attributes {
            w.str(name);
            w.u32(values.len() as u32);
            for value in values {
                w.str(value);
            }
        }
        w.u32(self.candidates.len() as u32);
        for (name, _) in &self.candidates {
            w.str(name);
        }
        for column in 0..self.attributes.len() {
            for (_, values) in &self.candidates {
                w.u32(values[column]);
            }
        }
        w.u32(self.rankings.len() as u32);
        let total: u64 = self.rankings.iter().map(|r| r.len() as u64).sum();
        w.u64(total);
        let mut offset = 0u64;
        w.u64(offset);
        for ranking in &self.rankings {
            offset += ranking.len() as u64;
            w.u64(offset);
        }
        for ranking in &self.rankings {
            for id in ranking {
                w.u32(*id);
            }
        }
        if let Some(weights) = &self.weights {
            for weight in weights {
                w.u32(*weight);
            }
        }
        w.out
    }

    /// Decodes wire bytes into columns plus the header fingerprint. Every
    /// count is validated against the remaining buffer before it drives an
    /// allocation, so a hostile header cannot balloon memory.
    pub fn decode(bytes: &[u8]) -> Result<(Self, u64), ApiError> {
        let mut r = Reader { buf: bytes, pos: 0 };
        let magic = r.bytes(COLUMNAR_MAGIC.len(), "magic")?;
        if magic != COLUMNAR_MAGIC {
            return Err(ApiError::invalid(
                "columnar: bad magic (not a MANICOL1 document)",
            ));
        }
        let flags = r.u32("flags")?;
        if flags & !FLAG_WEIGHTS != 0 {
            return Err(ApiError::invalid(format!(
                "columnar: unsupported flags {flags:#x}"
            )));
        }
        let fingerprint = r.u64("fingerprint")?;
        let name = r.str("dataset name")?;
        let num_attributes = r.count_u32("attribute count", 1)?;
        let mut attributes = Vec::with_capacity(num_attributes);
        for _ in 0..num_attributes {
            let attr_name = r.str("attribute name")?;
            let num_values = r.count_u32("attribute value count", 1)?;
            let mut values = Vec::with_capacity(num_values);
            for _ in 0..num_values {
                values.push(r.str("attribute value")?);
            }
            attributes.push((attr_name, values));
        }
        let num_candidates = r.count_u32("candidate count", 1)?;
        let mut names = Vec::with_capacity(num_candidates);
        for _ in 0..num_candidates {
            names.push(r.str("candidate name")?);
        }
        let mut columns = vec![Vec::with_capacity(num_candidates); attributes.len()];
        for column in columns.iter_mut() {
            for _ in 0..num_candidates {
                column.push(r.u32("candidate value index")?);
            }
        }
        let candidates = names
            .into_iter()
            .enumerate()
            .map(|(i, name)| (name, columns.iter().map(|c| c[i]).collect()))
            .collect();
        let num_rankings = r.count_u32("ranking count", 4)?;
        let total = r.u64("ranking item total")?;
        if total > (r.remaining() / 4) as u64 {
            return Err(ApiError::invalid(format!(
                "columnar: ranking item total {total} exceeds the document size"
            )));
        }
        let total = total as usize;
        let mut offsets = Vec::with_capacity(num_rankings + 1);
        for _ in 0..=num_rankings {
            offsets.push(r.u64("ranking offset")?);
        }
        if offsets[0] != 0
            || offsets[num_rankings] != total as u64
            || offsets.windows(2).any(|w| w[0] > w[1])
        {
            return Err(ApiError::invalid(
                "columnar: ranking offsets must rise monotonically from 0 to the item total",
            ));
        }
        let mut items = Vec::with_capacity(total);
        for _ in 0..total {
            items.push(r.u32("ranking item")?);
        }
        let rankings = offsets
            .windows(2)
            .map(|w| items[w[0] as usize..w[1] as usize].to_vec())
            .collect();
        let weights = if flags & FLAG_WEIGHTS != 0 {
            let mut weights = Vec::with_capacity(num_rankings);
            for _ in 0..num_rankings {
                weights.push(r.u32("ranking weight")?);
            }
            Some(weights)
        } else {
            None
        };
        if r.remaining() != 0 {
            return Err(ApiError::invalid(format!(
                "columnar: {} trailing byte(s) after the document",
                r.remaining()
            )));
        }
        Ok((
            Self {
                name,
                attributes,
                candidates,
                rankings,
                weights,
            },
            fingerprint,
        ))
    }
}

/// Encodes a dataset into columnar wire bytes.
pub fn encode_dataset(dataset: &EngineDataset) -> Vec<u8> {
    ColumnarDataset::from_dataset(dataset).encode_with_fingerprint(dataset.fingerprint())
}

/// Decodes columnar wire bytes into a validated dataset, rejecting documents
/// whose header fingerprint does not match the decoded content.
pub fn decode_dataset(bytes: &[u8]) -> Result<Arc<EngineDataset>, ApiError> {
    let (columns, claimed) = ColumnarDataset::decode(bytes)?;
    let dataset = columns.to_dataset()?;
    let actual = dataset.fingerprint();
    if actual != claimed {
        return Err(ApiError::invalid(format!(
            "columnar: header fingerprint {claimed:016x} does not match decoded content {actual:016x}"
        )));
    }
    Ok(dataset)
}

#[derive(Default)]
struct Writer {
    out: Vec<u8>,
}

impl Writer {
    fn bytes(&mut self, bytes: &[u8]) {
        self.out.extend_from_slice(bytes);
    }

    fn u32(&mut self, v: u32) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.out.extend_from_slice(&v.to_le_bytes());
    }

    fn str(&mut self, text: &str) {
        self.u32(text.len() as u32);
        self.bytes(text.as_bytes());
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn bytes(&mut self, len: usize, what: &str) -> Result<&'a [u8], ApiError> {
        if len > self.remaining() {
            return Err(ApiError::invalid(format!(
                "columnar: truncated document while reading {what}"
            )));
        }
        let slice = &self.buf[self.pos..self.pos + len];
        self.pos += len;
        Ok(slice)
    }

    fn u32(&mut self, what: &str) -> Result<u32, ApiError> {
        let raw = self.bytes(4, what)?;
        Ok(u32::from_le_bytes(raw.try_into().expect("4-byte slice")))
    }

    fn u64(&mut self, what: &str) -> Result<u64, ApiError> {
        let raw = self.bytes(8, what)?;
        Ok(u64::from_le_bytes(raw.try_into().expect("8-byte slice")))
    }

    /// Reads a count that prefixes elements of at least `min_element_bytes`
    /// each, rejecting counts the remaining buffer cannot possibly hold.
    fn count_u32(&mut self, what: &str, min_element_bytes: usize) -> Result<usize, ApiError> {
        let count = self.u32(what)? as usize;
        if count.saturating_mul(min_element_bytes) > self.remaining() {
            return Err(ApiError::invalid(format!(
                "columnar: {what} {count} exceeds the document size"
            )));
        }
        Ok(count)
    }

    fn str(&mut self, what: &str) -> Result<String, ApiError> {
        let len = self.u32(what)? as usize;
        let raw = self.bytes(len, what)?;
        String::from_utf8(raw.to_vec())
            .map_err(|_| ApiError::invalid(format!("columnar: {what} is not valid UTF-8")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{dataset_to_value, parse_dataset};
    use crate::value::parse_body;

    fn demo() -> Arc<EngineDataset> {
        let value = parse_body(
            r#"{
                "name": "demo",
                "candidates": [
                    {"name": "a", "attributes": {"G": "x", "R": "p"}},
                    {"name": "b", "attributes": {"G": "y", "R": "q"}},
                    {"name": "c", "attributes": {"G": "x", "R": "q"}},
                    {"name": "d", "attributes": {"G": "y", "R": "p"}}
                ],
                "rankings": [["a","b","c","d"], ["d","c","b","a"], ["b","a","d","c"]]
            }"#,
        )
        .unwrap();
        parse_dataset(&value).unwrap()
    }

    #[test]
    fn round_trip_preserves_the_fingerprint() {
        let dataset = demo();
        let bytes = encode_dataset(&dataset);
        assert_eq!(&bytes[..8], b"MANICOL1");
        let decoded = decode_dataset(&bytes).unwrap();
        assert_eq!(decoded.fingerprint(), dataset.fingerprint());
        assert_eq!(decoded.name(), "demo");
        assert_eq!(decoded.num_candidates(), 4);
        assert_eq!(decoded.num_rankings(), 3);
        // And the JSON rendering of both is identical text.
        assert_eq!(
            crate::value::render(&dataset_to_value(&decoded)),
            crate::value::render(&dataset_to_value(&dataset)),
        );
    }

    #[test]
    fn columnar_beats_json_on_size_for_many_rankings() {
        // Realistic names: a u32 id (4 B) replaces a quoted name per ranking
        // entry, so the win scales with name length and ranking count.
        let n = 20u32;
        let columns = ColumnarDataset {
            name: "mallows-grid".to_string(),
            attributes: vec![("Gender".to_string(), vec!["x".to_string(), "y".to_string()])],
            candidates: (0..n)
                .map(|i| (format!("candidate-{i:02}"), vec![i % 2]))
                .collect(),
            rankings: (0..200u32)
                .map(|r| (0..n).map(|i| (i + r) % n).collect())
                .collect(),
            weights: None,
        };
        let dataset = columns.to_dataset().unwrap();
        let binary = encode_dataset(&dataset).len();
        let json = crate::value::render(&dataset_to_value(&dataset)).len();
        assert!(
            binary * 2 < json,
            "columnar ({binary} B) should be well under half of JSON ({json} B)"
        );
    }

    #[test]
    fn weights_expand_into_repeated_rankings() {
        let mut columns = ColumnarDataset::from_dataset(&demo());
        columns.weights = Some(vec![3, 1, 2]);
        let bytes = columns.encode().unwrap();
        let decoded = decode_dataset(&bytes).unwrap();
        assert_eq!(decoded.num_rankings(), 6);
        let expanded = decoded.profile().rankings();
        assert_eq!(expanded[0].as_slice(), expanded[1].as_slice());
        assert_eq!(expanded[0].as_slice(), expanded[2].as_slice());
        assert_ne!(expanded[2].as_slice(), expanded[3].as_slice());

        let mut zero = ColumnarDataset::from_dataset(&demo());
        zero.weights = Some(vec![1, 0, 1]);
        assert!(zero.to_dataset().unwrap_err().message.contains("weight 0"));

        let mut bomb = ColumnarDataset::from_dataset(&demo());
        bomb.weights = Some(vec![u32::MAX, 1, 1]);
        assert!(bomb.to_dataset().unwrap_err().message.contains("expand"));
    }

    #[test]
    fn hostile_documents_are_rejected_with_context() {
        let dataset = demo();
        let good = encode_dataset(&dataset);

        // Wrong magic.
        let mut bad = good.clone();
        bad[0] = b'X';
        assert!(decode_dataset(&bad).unwrap_err().message.contains("magic"));

        // Unknown flags.
        let mut bad = good.clone();
        bad[8] = 0xFE;
        assert!(decode_dataset(&bad).unwrap_err().message.contains("flags"));

        // Truncation anywhere in the tail.
        for cut in [good.len() - 1, good.len() / 2, 21] {
            let err = decode_dataset(&good[..cut]).unwrap_err();
            assert!(
                err.message.contains("truncated") || err.message.contains("exceeds"),
                "cut at {cut}: {err}"
            );
        }

        // Forged fingerprint.
        let mut bad = good.clone();
        bad[12] ^= 0xFF;
        assert!(decode_dataset(&bad)
            .unwrap_err()
            .message
            .contains("fingerprint"));

        // A count too large for the document cannot drive an allocation:
        // splice an absurd attribute count right after the header (magic 8 +
        // flags 4 + fingerprint 8 + name length 4 + "demo" 4 = byte 28).
        let mut forged = good.clone();
        forged[28..32].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = decode_dataset(&forged).unwrap_err();
        assert!(err.message.contains("exceeds"), "{err}");
    }

    #[test]
    fn out_of_range_candidate_ids_are_rejected() {
        let mut columns = ColumnarDataset::from_dataset(&demo());
        columns.rankings[0][0] = u32::MAX;
        let err = columns.to_dataset().unwrap_err();
        assert!(err.message.contains("4294967295"), "{err}");
        assert!(columns.encode().is_err(), "encode validates too");
    }
}
