//! Small helpers over the serde shim [`Value`] data model: building objects,
//! rendering compact JSON text, and parsing request documents.

use serde::Value;

use crate::error::ApiError;

/// Parses a JSON document into a [`Value`].
pub fn parse_body(text: &str) -> Result<Value, ApiError> {
    serde_json::from_str(text).map_err(|e| ApiError::invalid(format!("invalid JSON body: {e}")))
}

/// Renders a JSON [`Value`] to compact text.
pub fn render(value: &Value) -> String {
    serde_json::to_string(value).expect("shim serialization of a Value cannot fail")
}

/// Builds a JSON object from `(key, value)` pairs.
pub fn obj(entries: Vec<(&str, Value)>) -> Value {
    Value::Object(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

/// A JSON string value.
pub fn s(text: impl Into<String>) -> Value {
    Value::String(text.into())
}

/// The standard error body `{"error": ...}`.
pub fn error_body(message: &str) -> String {
    render(&obj(vec![("error", s(message))]))
}

/// Appends one `(key, value)` entry to a JSON object value.
pub fn with_entry(value: Value, key: &str, entry: Value) -> Value {
    match value {
        Value::Object(mut entries) => {
            entries.push((key.to_string(), entry));
            Value::Object(entries)
        }
        other => obj(vec![("value", other), (key, entry)]),
    }
}

/// Reads an `f64` field off a JSON value.
pub fn as_f64(value: &Value, what: &str) -> Result<f64, ApiError> {
    match value {
        Value::Float(f) => Ok(*f),
        Value::UInt(u) => Ok(*u as f64),
        Value::Int(i) => Ok(*i as f64),
        _ => Err(ApiError::invalid(format!("{what} must be a number"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_helpers_build_objects() {
        let value = with_entry(
            obj(vec![("a", Value::UInt(1))]),
            "cached",
            Value::Bool(true),
        );
        let text = render(&value);
        assert_eq!(text, r#"{"a":1,"cached":true}"#);
        assert_eq!(error_body("boom"), r#"{"error":"boom"}"#);
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        let err = parse_body("{not json").unwrap_err();
        assert_eq!(err.kind, crate::error::ApiErrorKind::InvalidArgument);
        assert!(err.message.contains("invalid JSON body"));
    }

    #[test]
    fn as_f64_accepts_every_numeric_shape() {
        assert_eq!(as_f64(&Value::Float(0.5), "x").unwrap(), 0.5);
        assert_eq!(as_f64(&Value::UInt(2), "x").unwrap(), 2.0);
        assert_eq!(as_f64(&Value::Int(-3), "x").unwrap(), -3.0);
        assert!(as_f64(&Value::String("nope".into()), "x").is_err());
    }
}
