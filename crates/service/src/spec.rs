//! Consensus request specs: parsing API payloads into engine types and
//! rendering engine results back out, all over the workspace's serde shim
//! [`Value`] data model.
//!
//! A consensus payload looks like:
//!
//! ```json
//! {
//!   "dataset": {
//!     "name": "committee",
//!     "candidates": [
//!       {"name": "alice", "attributes": {"Gender": "Woman", "Race": "GroupA"}},
//!       {"name": "bola",  "attributes": {"Gender": "Man",   "Race": "GroupB"}}
//!     ],
//!     "rankings": [["alice", "bola"], ["bola", "alice"]],
//!     "domains": {"Gender": ["Man", "Woman"]}
//!   },
//!   "methods": ["Fair-Borda", "Fair-Copeland"],
//!   "delta": 0.1,
//!   "attribute_deltas": {"Gender": 0.05},
//!   "intersection_delta": 0.2,
//!   "budget": 100000
//! }
//! ```
//!
//! Attribute value domains are inferred in first-appearance order across the
//! candidate list (like the CSV front-end); the optional `domains` object pins
//! an explicit order so group ids stay stable across clients.
//!
//! [`dataset_to_value`] is the inverse of [`parse_dataset`]: it renders a
//! dataset back into this JSON shape (used by the wire-codec bench and the
//! differential columnar-vs-JSON tests).

use std::sync::Arc;

use mani_core::MethodKind;
use mani_engine::{ConsensusRequest, EngineDataset, MethodResult};
use mani_fairness::FairnessThresholds;
use mani_ranking::{CandidateDb, CandidateDbBuilder, Ranking, RankingProfile};
use serde::{Serialize, Value};

use crate::error::ApiError;
use crate::registry::DatasetRegistry;
use crate::value::{as_f64, obj, s};

/// One fully parsed consensus request spec, ready to submit or cache-key.
#[derive(Debug, Clone)]
pub struct ConsensusSpec {
    /// The parsed dataset.
    pub dataset: Arc<EngineDataset>,
    /// Methods to run, in response order.
    pub methods: Vec<MethodKind>,
    /// Fairness thresholds Δ.
    pub thresholds: FairnessThresholds,
    /// Optional exact-solver node budget.
    pub budget: Option<u64>,
}

impl ConsensusSpec {
    /// The engine request this spec describes.
    pub fn request(&self) -> ConsensusRequest {
        let mut request = ConsensusRequest::new(
            Arc::clone(&self.dataset),
            self.methods.iter().copied(),
            self.thresholds.clone(),
        );
        if let Some(budget) = self.budget {
            request = request.with_budget(budget);
        }
        request
    }

    /// Canonical response-cache key for one method of this spec: dataset
    /// content fingerprint + serialized thresholds + method + budget. Two
    /// requests with identical content collide on purpose, whatever their
    /// dataset display names.
    pub fn cache_key(&self, method: MethodKind) -> String {
        let thresholds = serde_json::to_string(&self.thresholds)
            .expect("shim serialization of thresholds cannot fail");
        format!(
            "{:016x}|{}|{}|{:?}",
            self.dataset.fingerprint(),
            thresholds,
            method.name(),
            self.budget
        )
    }
}

/// Resolves the dataset of a request body.
///
/// Three forms are accepted under `dataset`:
///
/// * an inline document (`{"name", "candidates", "rankings", ...}`);
/// * a registry reference `{"id": "ds-...", "version"?: N}` — distinguished
///   from the inline form by the presence of an `id` key. Omitting `version`
///   resolves the id's current version; pinning an evicted version is a
///   [`crate::ApiErrorKind::Conflict`].
/// * (legacy, deprecated) a flat string sibling `"dataset_id": "ds-..."`.
pub fn resolve_spec_dataset(
    value: &Value,
    registry: Option<&DatasetRegistry>,
) -> Result<Arc<EngineDataset>, ApiError> {
    match (value.get("dataset"), value.get("dataset_id")) {
        (Some(_), Some(_)) => Err(ApiError::invalid(
            "pass either `dataset` or `dataset_id`, not both",
        )),
        (Some(inline), None) => match inline.get("id") {
            Some(raw) => {
                let id = raw
                    .as_str()
                    .ok_or_else(|| ApiError::invalid("`dataset.id` must be a string"))?;
                let registry = require_registry(registry)?;
                match inline.get("version") {
                    None | Some(Value::Null) => registry.resolve(id),
                    Some(raw) => {
                        let version = match raw {
                            Value::UInt(u) => *u,
                            Value::Int(i) if *i > 0 => *i as u64,
                            _ => {
                                return Err(ApiError::invalid(
                                    "`dataset.version` must be a positive integer",
                                ))
                            }
                        };
                        registry.resolve_version(id, version).map(|r| r.dataset)
                    }
                }
            }
            None => parse_dataset(inline),
        },
        (None, Some(raw)) => {
            let id = raw
                .as_str()
                .ok_or_else(|| ApiError::invalid("`dataset_id` must be a string"))?;
            require_registry(registry)?.resolve(id)
        }
        (None, None) => Err(ApiError::invalid("missing `dataset` (or `dataset_id`)")),
    }
}

/// The registry, or the invalid-argument error contexts without one report.
fn require_registry(registry: Option<&DatasetRegistry>) -> Result<&DatasetRegistry, ApiError> {
    registry.ok_or_else(|| {
        ApiError::invalid("dataset references by id are not supported in this context")
    })
}

/// Parses one consensus spec (`dataset` or `dataset_id`, plus solve
/// options). `registry` resolves dataset references by id.
///
/// Solve options come in two equivalent shapes:
///
/// * **nested** — one `"options"` object:
///   `{"methods": [...], "thresholds": {"delta", "attribute_deltas",
///   "intersection_delta"}, "budget": N, "parallelism": K}`. `parallelism`
///   is an advisory worker-count hint: every kernel in the workspace is
///   bit-identical across thread counts, so it never changes results and the
///   engine's configured budget wins.
/// * **flat (legacy)** — `methods`, `delta`, `attribute_deltas`,
///   `intersection_delta`, `budget` as top-level siblings.
///
/// Mixing the two shapes in one request is rejected so clients cannot send
/// conflicting values.
pub fn parse_consensus_spec(
    value: &Value,
    registry: Option<&DatasetRegistry>,
) -> Result<ConsensusSpec, ApiError> {
    let dataset = resolve_spec_dataset(value, registry)?;
    let (methods, thresholds, budget) = match value.get("options") {
        None => (
            parse_methods(value.get("methods"))?,
            parse_thresholds(value, dataset.db())?,
            parse_budget(value.get("budget"))?,
        ),
        Some(options) => parse_solve_options(value, options, dataset.db())?,
    };
    Ok(ConsensusSpec {
        dataset,
        methods,
        thresholds,
        budget,
    })
}

/// Parses the nested `options` object (see [`parse_consensus_spec`]),
/// rejecting unknown option keys and any legacy flat sibling that would
/// shadow a nested value.
fn parse_solve_options(
    value: &Value,
    options: &Value,
    db: &CandidateDb,
) -> Result<(Vec<MethodKind>, FairnessThresholds, Option<u64>), ApiError> {
    let entries = options
        .as_object()
        .ok_or_else(|| ApiError::invalid("`options` must be an object"))?;
    for (key, _) in entries {
        match key.as_str() {
            "methods" | "thresholds" | "budget" | "parallelism" => {}
            other => {
                return Err(ApiError::invalid(format!(
                    "unknown `options` key `{other}` (expected methods, thresholds, \
                     budget, or parallelism)"
                )));
            }
        }
    }
    for flat in [
        "methods",
        "delta",
        "attribute_deltas",
        "intersection_delta",
        "budget",
    ] {
        if value.get(flat).is_some() {
            return Err(ApiError::invalid(format!(
                "pass `{flat}` either flat (legacy) or inside `options`, not both"
            )));
        }
    }
    let thresholds = match options.get("thresholds") {
        None | Some(Value::Null) => FairnessThresholds::uniform(0.1),
        Some(nested) => {
            nested
                .as_object()
                .ok_or_else(|| ApiError::invalid("`options.thresholds` must be an object"))?;
            parse_thresholds(nested, db)?
        }
    };
    if let Some(raw) = options.get("parallelism") {
        match raw {
            Value::Null => {}
            Value::UInt(u) if *u > 0 => {}
            Value::Int(i) if *i > 0 => {}
            _ => {
                return Err(ApiError::invalid(
                    "`options.parallelism` must be a positive integer",
                ));
            }
        }
    }
    Ok((
        parse_methods(options.get("methods"))?,
        thresholds,
        parse_budget(options.get("budget"))?,
    ))
}

/// Parses the optional exact-solver node budget.
pub fn parse_budget(value: Option<&Value>) -> Result<Option<u64>, ApiError> {
    match value {
        None | Some(Value::Null) => Ok(None),
        Some(Value::UInt(u)) => Ok(Some(*u)),
        Some(Value::Int(i)) if *i >= 0 => Ok(Some(*i as u64)),
        Some(_) => Err(ApiError::invalid("`budget` must be an integer")),
    }
}

/// Parses the `methods` list (default: the paper's four proposed methods).
pub fn parse_methods(value: Option<&Value>) -> Result<Vec<MethodKind>, ApiError> {
    let Some(value) = value else {
        return Ok(MethodKind::proposed().to_vec());
    };
    let names = value
        .as_array()
        .ok_or_else(|| ApiError::invalid("`methods` must be an array of method names"))?;
    if names.is_empty() {
        return Err(ApiError::invalid("`methods` must not be empty"));
    }
    let methods: Vec<MethodKind> = names
        .iter()
        .map(|name| {
            let name = name
                .as_str()
                .ok_or_else(|| ApiError::invalid("`methods` entries must be strings"))?;
            MethodKind::parse(name).ok_or_else(|| {
                ApiError::invalid(format!("unknown method `{name}` (see GET /v1/methods)"))
            })
        })
        .collect::<Result<_, _>>()?;
    // Reject duplicates here so the client gets a deterministic invalid-
    // argument error (the engine would reject them too, but only inside an
    // otherwise-successful response, and a response-cache hit would mask the
    // problem entirely).
    for (i, kind) in methods.iter().enumerate() {
        if methods[..i].contains(kind) {
            return Err(ApiError::invalid(format!(
                "method `{}` listed twice in `methods`",
                kind.name()
            )));
        }
    }
    Ok(methods)
}

/// Parses a comma-separated method list (the query-string form used by
/// columnar uploads, where the body is the dataset itself).
pub fn parse_methods_csv(raw: &str) -> Result<Vec<MethodKind>, ApiError> {
    let names: Vec<Value> = raw
        .split(',')
        .map(str::trim)
        .filter(|n| !n.is_empty())
        .map(s)
        .collect();
    parse_methods(Some(&Value::Array(names)))
}

/// Parses the threshold fields (`delta`, `attribute_deltas`, `intersection_delta`).
fn parse_thresholds(value: &Value, db: &CandidateDb) -> Result<FairnessThresholds, ApiError> {
    let delta = match value.get("delta") {
        None | Some(Value::Null) => 0.1,
        Some(raw) => as_f64(raw, "`delta`")?,
    };
    let mut thresholds = FairnessThresholds::uniform(delta);
    if let Some(overrides) = value.get("attribute_deltas") {
        let entries = overrides
            .as_object()
            .ok_or_else(|| ApiError::invalid("`attribute_deltas` must be an object"))?;
        for (attribute, raw) in entries {
            let id = db.schema().attribute_id(attribute).ok_or_else(|| {
                ApiError::invalid(format!(
                    "unknown attribute `{attribute}` in `attribute_deltas`"
                ))
            })?;
            thresholds =
                thresholds.with_attribute_delta(id, as_f64(raw, "`attribute_deltas` value")?);
        }
    }
    if let Some(raw) = value.get("intersection_delta") {
        if !matches!(raw, Value::Null) {
            thresholds = thresholds.with_intersection_delta(as_f64(raw, "`intersection_delta`")?);
        }
    }
    Ok(thresholds)
}

/// Parses an inline dataset: candidates with attribute assignments plus a
/// profile of rankings over them.
pub fn parse_dataset(value: &Value) -> Result<Arc<EngineDataset>, ApiError> {
    let name = match value.get("name") {
        Some(raw) => raw
            .as_str()
            .ok_or_else(|| ApiError::invalid("dataset `name` must be a string"))?
            .to_string(),
        None => "dataset".to_string(),
    };
    let candidates = value
        .get("candidates")
        .and_then(Value::as_array)
        .ok_or_else(|| ApiError::invalid("dataset needs a `candidates` array"))?;
    if candidates.is_empty() {
        return Err(ApiError::invalid("`candidates` must not be empty"));
    }

    // Pass 1: attribute order from the first candidate, then value domains in
    // declared-then-first-appearance order.
    let first = candidates[0]
        .get("attributes")
        .and_then(Value::as_object)
        .ok_or_else(|| ApiError::invalid("every candidate needs an `attributes` object"))?;
    let attribute_names: Vec<String> = first.iter().map(|(k, _)| k.clone()).collect();
    if attribute_names.is_empty() {
        return Err(ApiError::invalid(
            "candidates need at least one protected attribute",
        ));
    }
    let mut domains: Vec<Vec<String>> = attribute_names
        .iter()
        .map(|attribute| declared_domain(value, attribute))
        .collect::<Result<_, _>>()?;
    let mut rows: Vec<(String, Vec<String>)> = Vec::with_capacity(candidates.len());
    for candidate in candidates {
        let name = candidate
            .get("name")
            .and_then(Value::as_str)
            .ok_or_else(|| ApiError::invalid("every candidate needs a string `name`"))?;
        let attributes = candidate
            .get("attributes")
            .and_then(Value::as_object)
            .ok_or_else(|| ApiError::invalid("every candidate needs an `attributes` object"))?;
        let mut assignment = Vec::with_capacity(attribute_names.len());
        for (index, attribute) in attribute_names.iter().enumerate() {
            let raw = attributes
                .iter()
                .find(|(k, _)| k == attribute)
                .map(|(_, v)| v)
                .ok_or_else(|| {
                    ApiError::invalid(format!(
                        "candidate `{name}` is missing attribute `{attribute}`"
                    ))
                })?;
            let label = raw.as_str().ok_or_else(|| {
                ApiError::invalid(format!(
                    "attribute `{attribute}` of `{name}` must be a string"
                ))
            })?;
            if !domains[index].iter().any(|v| v == label) {
                domains[index].push(label.to_string());
            }
            assignment.push(label.to_string());
        }
        rows.push((name.to_string(), assignment));
    }

    // Pass 2: build the database against the settled domains.
    let mut builder = CandidateDbBuilder::new();
    let mut attribute_ids = Vec::with_capacity(attribute_names.len());
    for (attribute, domain) in attribute_names.iter().zip(&domains) {
        if domain.len() < 2 {
            return Err(ApiError::invalid(format!(
                "attribute `{attribute}` has {} distinct value(s); protected attributes need at least 2",
                domain.len()
            )));
        }
        let id = builder
            .add_attribute(attribute.clone(), domain.iter().map(String::as_str))
            .map_err(|e| ApiError::invalid(e.to_string()))?;
        attribute_ids.push(id);
    }
    for (name, assignment) in rows {
        builder
            .add_candidate_named(name, attribute_ids.iter().copied().zip(assignment))
            .map_err(|e| ApiError::invalid(e.to_string()))?;
    }
    let db = builder
        .build()
        .map_err(|e| ApiError::invalid(e.to_string()))?;

    // Pass 3: the ranking profile over the built database.
    let rankings = value
        .get("rankings")
        .and_then(Value::as_array)
        .ok_or_else(|| ApiError::invalid("dataset needs a `rankings` array"))?;
    if rankings.is_empty() {
        return Err(ApiError::invalid("`rankings` must not be empty"));
    }
    let mut parsed = Vec::with_capacity(rankings.len());
    for (index, ranking) in rankings.iter().enumerate() {
        let names = ranking.as_array().ok_or_else(|| {
            ApiError::invalid(format!("ranking {index} must be an array of names"))
        })?;
        let mut order = Vec::with_capacity(names.len());
        for raw in names {
            let candidate = raw.as_str().ok_or_else(|| {
                ApiError::invalid(format!("ranking {index} entries must be strings"))
            })?;
            let id = db.candidate_by_name(candidate).ok_or_else(|| {
                ApiError::invalid(format!(
                    "ranking {index} names unknown candidate `{candidate}`"
                ))
            })?;
            order.push(id);
        }
        parsed.push(
            Ranking::from_order(order)
                .map_err(|e| ApiError::invalid(format!("ranking {index}: {e}")))?,
        );
    }
    let profile =
        RankingProfile::for_database(&db, parsed).map_err(|e| ApiError::invalid(e.to_string()))?;
    EngineDataset::new(name, db, profile)
        .map(Arc::new)
        .map_err(|e| ApiError::invalid(e.to_string()))
}

/// Values pinned for `attribute` by the optional `domains` object.
fn declared_domain(dataset: &Value, attribute: &str) -> Result<Vec<String>, ApiError> {
    let Some(domains) = dataset.get("domains") else {
        return Ok(Vec::new());
    };
    let entries = domains
        .as_object()
        .ok_or_else(|| ApiError::invalid("`domains` must be an object"))?;
    let Some(raw) = entries.iter().find(|(k, _)| k == attribute).map(|(_, v)| v) else {
        return Ok(Vec::new());
    };
    let values = raw
        .as_array()
        .ok_or_else(|| ApiError::invalid(format!("`domains.{attribute}` must be an array")))?;
    values
        .iter()
        .map(|v| {
            v.as_str().map(str::to_string).ok_or_else(|| {
                ApiError::invalid(format!("`domains.{attribute}` entries must be strings"))
            })
        })
        .collect()
}

/// Renders a dataset back into the JSON upload shape [`parse_dataset`]
/// accepts: `name`, `candidates` (with `attributes` objects), `rankings`
/// (name lists), and a `domains` object pinning every attribute's declared
/// value order so a round-trip rebuilds identical value ids (and therefore an
/// identical content fingerprint).
pub fn dataset_to_value(dataset: &EngineDataset) -> Value {
    let db = dataset.db();
    let schema = db.schema();
    let attributes: Vec<(String, Vec<String>)> = schema
        .attributes()
        .map(|(_, attribute)| {
            (
                attribute.name().to_string(),
                attribute.values().map(str::to_string).collect(),
            )
        })
        .collect();
    let candidates = Value::Array(
        db.candidates()
            .map(|(_, candidate)| {
                let assigned = Value::Object(
                    attributes
                        .iter()
                        .zip(candidate.values())
                        .map(|((name, domain), value)| {
                            (name.clone(), s(domain[value.index()].clone()))
                        })
                        .collect(),
                );
                obj(vec![
                    ("name", s(candidate.name())),
                    ("attributes", assigned),
                ])
            })
            .collect(),
    );
    let rankings = Value::Array(
        dataset
            .profile()
            .rankings()
            .iter()
            .map(|ranking| ranking_names(ranking, db))
            .collect(),
    );
    let domains = Value::Object(
        attributes
            .iter()
            .map(|(name, domain)| {
                (
                    name.clone(),
                    Value::Array(domain.iter().map(|v| s(v.clone())).collect()),
                )
            })
            .collect(),
    );
    obj(vec![
        ("name", s(dataset.name())),
        ("candidates", candidates),
        ("rankings", rankings),
        ("domains", domains),
    ])
}

/// Candidate names of a ranking, best first.
pub fn ranking_names(ranking: &Ranking, db: &CandidateDb) -> Value {
    Value::Array(
        ranking
            .iter()
            .map(|id| {
                s(db.candidate(id)
                    .map(|c| c.name().to_string())
                    .unwrap_or_else(|_| "?".to_string()))
            })
            .collect(),
    )
}

/// Attribute names of a database, in schema order.
pub fn attribute_names_json(db: &CandidateDb) -> Value {
    Value::Array(db.schema().attributes().map(|(_, a)| s(a.name())).collect())
}

/// Renders one successful method result (without the volatile `cached` flag,
/// which the caller appends when serving).
pub fn method_result_json(result: &MethodResult, db: &CandidateDb) -> Value {
    let summary = result.outcome.summary().serialize_value();
    let mut entries = match summary {
        Value::Object(entries) => entries,
        other => vec![("summary".to_string(), other)],
    };
    entries.push(("attributes".to_string(), attribute_names_json(db)));
    entries.push((
        "ranking".to_string(),
        ranking_names(&result.outcome.ranking, db),
    ));
    entries.push((
        "duration_ms".to_string(),
        Value::Float(result.duration.as_secs_f64() * 1e3),
    ));
    entries.push((
        "precedence_cache_hit".to_string(),
        Value::Bool(result.cache_hit),
    ));
    Value::Object(entries)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::ApiErrorKind;
    use crate::value::parse_body;

    pub(crate) fn demo_spec_value(delta: f64) -> Value {
        parse_body(&format!(
            r#"{{
                "dataset": {{
                    "name": "demo",
                    "candidates": [
                        {{"name": "a", "attributes": {{"G": "x"}}}},
                        {{"name": "b", "attributes": {{"G": "y"}}}},
                        {{"name": "c", "attributes": {{"G": "x"}}}},
                        {{"name": "d", "attributes": {{"G": "y"}}}}
                    ],
                    "rankings": [["a","b","c","d"], ["d","c","b","a"], ["a","c","b","d"]]
                }},
                "methods": ["Fair-Borda"],
                "delta": {delta}
            }}"#
        ))
        .unwrap()
    }

    #[test]
    fn parses_a_full_spec() {
        let spec = parse_consensus_spec(&demo_spec_value(0.2), None).unwrap();
        assert_eq!(spec.dataset.name(), "demo");
        assert_eq!(spec.dataset.num_candidates(), 4);
        assert_eq!(spec.dataset.num_rankings(), 3);
        assert_eq!(spec.methods, vec![MethodKind::FairBorda]);
        assert_eq!(spec.thresholds.default_delta(), 0.2);
        assert_eq!(spec.budget, None);
        let request = spec.request();
        assert!(request.validate().is_ok());
    }

    #[test]
    fn methods_default_to_the_proposed_four() {
        let methods = parse_methods(None).unwrap();
        assert_eq!(methods, MethodKind::proposed().to_vec());
        assert!(parse_methods(Some(&Value::Array(vec![]))).is_err());
        assert!(parse_methods(Some(&Value::Array(vec![s("Fair-Nope")]))).is_err());
        let duplicated = Value::Array(vec![s("Fair-Borda"), s("Fair-Borda")]);
        let err = parse_methods(Some(&duplicated)).unwrap_err();
        assert_eq!(err.kind, ApiErrorKind::InvalidArgument);
        assert!(err.message.contains("twice"), "{err}");
    }

    #[test]
    fn methods_parse_from_csv_form() {
        let methods = parse_methods_csv("Fair-Borda, Fair-Copeland").unwrap();
        assert_eq!(
            methods,
            vec![MethodKind::FairBorda, MethodKind::FairCopeland]
        );
        assert!(parse_methods_csv("Fair-Borda,Fair-Borda").is_err());
        assert!(parse_methods_csv("").is_err(), "empty list is invalid");
    }

    #[test]
    fn cache_key_sees_content_not_names() {
        let a = parse_consensus_spec(&demo_spec_value(0.2), None).unwrap();
        let mut renamed = demo_spec_value(0.2);
        if let Value::Object(ref mut entries) = renamed {
            if let Some((_, Value::Object(ref mut fields))) =
                entries.iter_mut().find(|(k, _)| k == "dataset")
            {
                for (key, value) in fields.iter_mut() {
                    if key == "name" {
                        *value = s("other-name");
                    }
                }
            }
        }
        let b = parse_consensus_spec(&renamed, None).unwrap();
        assert_eq!(
            a.cache_key(MethodKind::FairBorda),
            b.cache_key(MethodKind::FairBorda),
            "display names must not split the cache"
        );
        let c = parse_consensus_spec(&demo_spec_value(0.3), None).unwrap();
        assert_ne!(
            a.cache_key(MethodKind::FairBorda),
            c.cache_key(MethodKind::FairBorda),
            "thresholds must split the cache"
        );
        assert_ne!(
            a.cache_key(MethodKind::FairBorda),
            a.cache_key(MethodKind::FairCopeland),
            "methods must split the cache"
        );
    }

    #[test]
    fn dataset_errors_are_descriptive() {
        let missing = parse_body(r#"{"methods": ["Fair-Borda"]}"#).unwrap();
        assert!(parse_consensus_spec(&missing, None)
            .unwrap_err()
            .message
            .contains("dataset"));

        let unknown = parse_body(
            r#"{"dataset": {"candidates": [
                {"name": "a", "attributes": {"G": "x"}},
                {"name": "b", "attributes": {"G": "y"}}
            ], "rankings": [["a", "nope"]]}}"#,
        )
        .unwrap();
        assert!(parse_consensus_spec(&unknown, None)
            .unwrap_err()
            .message
            .contains("unknown candidate"));

        let single_valued = parse_body(
            r#"{"dataset": {"candidates": [
                {"name": "a", "attributes": {"G": "x"}},
                {"name": "b", "attributes": {"G": "x"}}
            ], "rankings": [["a", "b"]]}}"#,
        )
        .unwrap();
        assert!(parse_consensus_spec(&single_valued, None)
            .unwrap_err()
            .message
            .contains("at least 2"));
    }

    #[test]
    fn domains_pin_value_order() {
        let pinned = parse_body(
            r#"{"dataset": {
                "candidates": [
                    {"name": "a", "attributes": {"G": "y"}},
                    {"name": "b", "attributes": {"G": "x"}}
                ],
                "rankings": [["a", "b"]],
                "domains": {"G": ["x", "y"]}
            }}"#,
        )
        .unwrap();
        let spec = parse_consensus_spec(&pinned, None).unwrap();
        let db = spec.dataset.db();
        let g = db.schema().attribute_id("G").unwrap();
        let values: Vec<&str> = db.schema().attribute(g).unwrap().values().collect();
        assert_eq!(values, vec!["x", "y"], "declared order wins");
    }

    #[test]
    fn attribute_deltas_resolve_against_the_schema() {
        let mut value = demo_spec_value(0.2);
        if let Value::Object(ref mut entries) = value {
            entries.push((
                "attribute_deltas".to_string(),
                obj(vec![("G", Value::Float(0.05))]),
            ));
            entries.push(("intersection_delta".to_string(), Value::Float(0.4)));
        }
        let spec = parse_consensus_spec(&value, None).unwrap();
        let g = spec.dataset.db().schema().attribute_id("G").unwrap();
        assert_eq!(spec.thresholds.attribute_delta(g), Some(0.05));
        assert_eq!(spec.thresholds.intersection_delta(), Some(0.4));

        let mut bad = demo_spec_value(0.2);
        if let Value::Object(ref mut entries) = bad {
            entries.push((
                "attribute_deltas".to_string(),
                obj(vec![("Nope", Value::Float(0.05))]),
            ));
        }
        assert!(parse_consensus_spec(&bad, None)
            .unwrap_err()
            .message
            .contains("unknown attribute"));
    }

    #[test]
    fn dataset_id_resolves_through_the_registry() {
        let registry = DatasetRegistry::new(4);
        let inline = parse_consensus_spec(&demo_spec_value(0.2), None).unwrap();
        let (registered, _) = registry.register(Arc::clone(&inline.dataset)).unwrap();
        let id = registered.id;

        let mut by_id = demo_spec_value(0.2);
        if let Value::Object(ref mut entries) = by_id {
            entries.retain(|(k, _)| k != "dataset");
            entries.push(("dataset_id".to_string(), s(id.clone())));
        }
        let spec = parse_consensus_spec(&by_id, Some(&registry)).unwrap();
        assert_eq!(
            spec.dataset.fingerprint(),
            inline.dataset.fingerprint(),
            "registry resolution must hand back identical content"
        );
        assert_eq!(
            spec.cache_key(MethodKind::FairBorda),
            inline.cache_key(MethodKind::FairBorda),
            "dataset_id and inline specs must share the response cache"
        );

        // Unknown ids are not-found; missing registry support and
        // both-at-once are invalid arguments.
        let mut unknown = by_id.clone();
        if let Value::Object(ref mut entries) = unknown {
            entries.retain(|(k, _)| k != "dataset_id");
            entries.push(("dataset_id".to_string(), s("ds-nope")));
        }
        assert_eq!(
            parse_consensus_spec(&unknown, Some(&registry))
                .unwrap_err()
                .kind,
            ApiErrorKind::NotFound
        );
        assert_eq!(
            parse_consensus_spec(&by_id, None).unwrap_err().kind,
            ApiErrorKind::InvalidArgument
        );
        let mut both = demo_spec_value(0.2);
        if let Value::Object(ref mut entries) = both {
            entries.push(("dataset_id".to_string(), s(id)));
        }
        let err = parse_consensus_spec(&both, Some(&registry)).unwrap_err();
        assert!(err.message.contains("not both"), "{err}");
    }

    #[test]
    fn dataset_references_resolve_ids_and_pinned_versions() {
        let registry = DatasetRegistry::new(4);
        let inline = parse_consensus_spec(&demo_spec_value(0.2), None).unwrap();
        let (registered, _) = registry.register(Arc::clone(&inline.dataset)).unwrap();
        let id = registered.id;

        // `"dataset": {"id": ...}` resolves the current version.
        let by_ref = parse_body(&format!(
            r#"{{"dataset": {{"id": "{id}"}}, "methods": ["Fair-Borda"], "delta": 0.2}}"#
        ))
        .unwrap();
        let spec = parse_consensus_spec(&by_ref, Some(&registry)).unwrap();
        assert_eq!(spec.dataset.fingerprint(), inline.dataset.fingerprint());

        // An explicit version pin resolves the same content while retained.
        let pinned = parse_body(&format!(
            r#"{{"dataset": {{"id": "{id}", "version": 1}}, "methods": ["Fair-Borda"]}}"#
        ))
        .unwrap();
        let spec = parse_consensus_spec(&pinned, Some(&registry)).unwrap();
        assert_eq!(spec.dataset.fingerprint(), inline.dataset.fingerprint());

        // Unknown versions are not-found; malformed pins are invalid.
        let future = parse_body(&format!(
            r#"{{"dataset": {{"id": "{id}", "version": 9}}, "methods": ["Fair-Borda"]}}"#
        ))
        .unwrap();
        assert_eq!(
            parse_consensus_spec(&future, Some(&registry))
                .unwrap_err()
                .kind,
            ApiErrorKind::NotFound
        );
        let bad = parse_body(&format!(
            r#"{{"dataset": {{"id": "{id}", "version": "one"}}, "methods": ["Fair-Borda"]}}"#
        ))
        .unwrap();
        assert_eq!(
            parse_consensus_spec(&bad, Some(&registry))
                .unwrap_err()
                .kind,
            ApiErrorKind::InvalidArgument
        );
        // References need a registry, like `dataset_id`.
        assert_eq!(
            parse_consensus_spec(&by_ref, None).unwrap_err().kind,
            ApiErrorKind::InvalidArgument
        );
    }

    #[test]
    fn nested_options_are_equivalent_to_flat_fields() {
        // The same solve expressed flat (legacy) and nested under `options`
        // must produce identical specs — and identical response-cache keys.
        let mut flat = demo_spec_value(0.25);
        if let Value::Object(ref mut entries) = flat {
            entries.push((
                "attribute_deltas".to_string(),
                obj(vec![("G", Value::Float(0.05))]),
            ));
            entries.push(("intersection_delta".to_string(), Value::Float(0.4)));
            entries.push(("budget".to_string(), Value::UInt(5000)));
        }
        let nested = parse_body(
            r#"{
                "dataset": {
                    "name": "demo",
                    "candidates": [
                        {"name": "a", "attributes": {"G": "x"}},
                        {"name": "b", "attributes": {"G": "y"}},
                        {"name": "c", "attributes": {"G": "x"}},
                        {"name": "d", "attributes": {"G": "y"}}
                    ],
                    "rankings": [["a","b","c","d"], ["d","c","b","a"], ["a","c","b","d"]]
                },
                "options": {
                    "methods": ["Fair-Borda"],
                    "thresholds": {
                        "delta": 0.25,
                        "attribute_deltas": {"G": 0.05},
                        "intersection_delta": 0.4
                    },
                    "budget": 5000,
                    "parallelism": 4
                }
            }"#,
        )
        .unwrap();
        let flat_spec = parse_consensus_spec(&flat, None).unwrap();
        let nested_spec = parse_consensus_spec(&nested, None).unwrap();
        assert_eq!(flat_spec.methods, nested_spec.methods);
        assert_eq!(flat_spec.thresholds, nested_spec.thresholds);
        assert_eq!(flat_spec.budget, nested_spec.budget);
        assert_eq!(
            flat_spec.cache_key(MethodKind::FairBorda),
            nested_spec.cache_key(MethodKind::FairBorda),
            "equivalent shapes must share the response cache"
        );

        // Mixing shapes and unknown option keys fail loudly.
        let mut mixed = demo_spec_value(0.25);
        if let Value::Object(ref mut entries) = mixed {
            entries.push((
                "options".to_string(),
                obj(vec![("budget", Value::UInt(10))]),
            ));
        }
        let err = parse_consensus_spec(&mixed, None).unwrap_err();
        assert!(err.message.contains("not both"), "{err}");
        let unknown = parse_body(
            r#"{"dataset": {"candidates": [
                    {"name": "a", "attributes": {"G": "x"}},
                    {"name": "b", "attributes": {"G": "y"}}
                ], "rankings": [["a","b"]]},
                "options": {"banana": 1}}"#,
        )
        .unwrap();
        let err = parse_consensus_spec(&unknown, None).unwrap_err();
        assert!(err.message.contains("unknown `options` key"), "{err}");
        let bad_par = parse_body(
            r#"{"dataset": {"candidates": [
                    {"name": "a", "attributes": {"G": "x"}},
                    {"name": "b", "attributes": {"G": "y"}}
                ], "rankings": [["a","b"]]},
                "options": {"parallelism": 0}}"#,
        )
        .unwrap();
        assert!(parse_consensus_spec(&bad_par, None)
            .unwrap_err()
            .message
            .contains("parallelism"));
    }

    #[test]
    fn dataset_to_value_round_trips_bit_identically() {
        let spec = parse_consensus_spec(&demo_spec_value(0.2), None).unwrap();
        let encoded = dataset_to_value(&spec.dataset);
        let reparsed = parse_dataset(&encoded).unwrap();
        assert_eq!(
            reparsed.fingerprint(),
            spec.dataset.fingerprint(),
            "JSON round-trip must preserve the content fingerprint"
        );
        assert_eq!(reparsed.name(), "demo");
        // Round-tripping the rendered form again is a fixed point.
        let again = dataset_to_value(&reparsed);
        assert_eq!(crate::value::render(&encoded), crate::value::render(&again));
    }
}
