//! Transport-agnostic API errors.
//!
//! The service layer never speaks HTTP: failures carry an [`ApiErrorKind`]
//! and a human-readable message, and each transport maps kinds onto its own
//! wire vocabulary (an HTTP front-end maps them to 4xx/5xx statuses, a future
//! RPC transport to its own error frames, the CLI to exit codes). Keeping
//! numeric wire statuses out of this crate is CI-enforced by the layering
//! guard in the lint job.

use std::fmt;

/// The class of an API failure, independent of any transport's encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ApiErrorKind {
    /// The request was malformed or semantically invalid (bad field, unknown
    /// method name, inconsistent dataset, undecodable body).
    InvalidArgument,
    /// The referenced entity (dataset id, job id, endpoint) does not exist.
    NotFound,
    /// The request references state the server can no longer honor (e.g. a
    /// pinned dataset version that has been evicted from the version chain).
    Conflict,
    /// A bounded resource is full (engine queue, dataset registry); the
    /// request may succeed later.
    Overloaded,
    /// The request body's representation is not one the codec layer supports.
    UnsupportedMedia,
    /// The client asked for a response representation the service cannot
    /// produce.
    NotAcceptable,
    /// An internal invariant failed while handling an otherwise valid
    /// request.
    Internal,
}

impl ApiErrorKind {
    /// Stable lower-snake label for logs and structured error envelopes.
    pub fn label(self) -> &'static str {
        match self {
            ApiErrorKind::InvalidArgument => "invalid_argument",
            ApiErrorKind::NotFound => "not_found",
            ApiErrorKind::Conflict => "conflict",
            ApiErrorKind::Overloaded => "overloaded",
            ApiErrorKind::UnsupportedMedia => "unsupported_media",
            ApiErrorKind::NotAcceptable => "not_acceptable",
            ApiErrorKind::Internal => "internal",
        }
    }
}

/// A structured service-layer failure: a [kind](ApiErrorKind) plus a message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApiError {
    /// What class of failure this is (drives the transport's status mapping).
    pub kind: ApiErrorKind,
    /// Human-readable description, safe to return to the client.
    pub message: String,
}

impl ApiError {
    /// An error of `kind` with `message`.
    pub fn new(kind: ApiErrorKind, message: impl Into<String>) -> Self {
        Self {
            kind,
            message: message.into(),
        }
    }

    /// An [`ApiErrorKind::InvalidArgument`] error.
    pub fn invalid(message: impl Into<String>) -> Self {
        Self::new(ApiErrorKind::InvalidArgument, message)
    }

    /// An [`ApiErrorKind::NotFound`] error.
    pub fn not_found(message: impl Into<String>) -> Self {
        Self::new(ApiErrorKind::NotFound, message)
    }

    /// An [`ApiErrorKind::Conflict`] error.
    pub fn conflict(message: impl Into<String>) -> Self {
        Self::new(ApiErrorKind::Conflict, message)
    }

    /// An [`ApiErrorKind::Overloaded`] error.
    pub fn overloaded(message: impl Into<String>) -> Self {
        Self::new(ApiErrorKind::Overloaded, message)
    }

    /// An [`ApiErrorKind::Internal`] error.
    pub fn internal(message: impl Into<String>) -> Self {
        Self::new(ApiErrorKind::Internal, message)
    }
}

impl fmt::Display for ApiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.kind.label(), self.message)
    }
}

impl std::error::Error for ApiError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kinds_have_stable_labels_and_display() {
        let err = ApiError::not_found("no such dataset `ds-1`");
        assert_eq!(err.kind, ApiErrorKind::NotFound);
        assert_eq!(err.to_string(), "not_found: no such dataset `ds-1`");
        assert_eq!(ApiErrorKind::UnsupportedMedia.label(), "unsupported_media");
        assert_eq!(ApiErrorKind::Overloaded.label(), "overloaded");
    }
}
