//! The persisted dataset registry behind the datasets CRUD operations.
//!
//! Interactive clients (FairFuse-style threshold exploration) re-query the
//! same candidate pool with varied deltas and methods. Re-uploading a
//! multi-megabyte dataset per request wastes client bandwidth and server parse
//! time, so the registry lets a client upload once and reference the dataset
//! by id (`"dataset_id"` in consensus/audit bodies) for every later solve.
//!
//! Ids are **content fingerprints** ([`EngineDataset::fingerprint`], the same
//! key the engine's `PrecedenceCache` uses), so a registered dataset shares
//! the warm precedence matrix with every inline request carrying identical
//! content, and re-uploading identical content is idempotent: same id back.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use mani_engine::EngineDataset;

use crate::error::ApiError;

/// Most datasets held at once; uploads beyond this answer
/// [`crate::ApiErrorKind::Overloaded`] until something is deleted. Bounds
/// worst-case registry memory the same way the response cache bounds outcome
/// memory.
pub const MAX_REGISTERED_DATASETS: usize = 1024;

/// Canonical registry id for a dataset: its content fingerprint, hex-encoded.
pub fn dataset_id(dataset: &EngineDataset) -> String {
    format!("ds-{:016x}", dataset.fingerprint())
}

/// A bounded, thread-safe store of uploaded datasets keyed by content id.
#[derive(Debug)]
pub struct DatasetRegistry {
    inner: Mutex<HashMap<String, Arc<EngineDataset>>>,
    capacity: usize,
}

impl Default for DatasetRegistry {
    fn default() -> Self {
        Self::new(MAX_REGISTERED_DATASETS)
    }
}

impl DatasetRegistry {
    /// A registry bounded to `capacity` datasets (`0` means
    /// [`MAX_REGISTERED_DATASETS`]).
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(HashMap::new()),
            capacity: if capacity == 0 {
                MAX_REGISTERED_DATASETS
            } else {
                capacity
            },
        }
    }

    /// Registers a dataset, returning `(id, created)`. Re-registering
    /// identical content is idempotent (`created == false`, same id); a full
    /// registry rejects *new* content as overloaded.
    pub fn register(&self, dataset: Arc<EngineDataset>) -> Result<(String, bool), ApiError> {
        let id = dataset_id(&dataset);
        let mut inner = self.inner.lock().expect("dataset registry lock poisoned");
        if inner.contains_key(&id) {
            return Ok((id, false));
        }
        if inner.len() >= self.capacity {
            return Err(ApiError::overloaded(format!(
                "dataset registry is full ({} entries); DELETE unused datasets first",
                self.capacity
            )));
        }
        inner.insert(id.clone(), dataset);
        Ok((id, true))
    }

    /// Looks an id up.
    pub fn get(&self, id: &str) -> Option<Arc<EngineDataset>> {
        self.inner
            .lock()
            .expect("dataset registry lock poisoned")
            .get(id)
            .cloned()
    }

    /// Resolves an id or reports a not-found error naming it.
    pub fn resolve(&self, id: &str) -> Result<Arc<EngineDataset>, ApiError> {
        self.get(id).ok_or_else(|| {
            ApiError::not_found(format!(
                "no such dataset `{id}` (upload via POST /v1/datasets)"
            ))
        })
    }

    /// Removes an id, returning the dataset it held.
    pub fn remove(&self, id: &str) -> Option<Arc<EngineDataset>> {
        self.inner
            .lock()
            .expect("dataset registry lock poisoned")
            .remove(id)
    }

    /// Number of datasets currently registered.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .expect("dataset registry lock poisoned")
            .len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::ApiErrorKind;
    use mani_ranking::{CandidateDbBuilder, Ranking, RankingProfile};

    fn dataset(name: &str, n: usize) -> Arc<EngineDataset> {
        let mut b = CandidateDbBuilder::new();
        let g = b.add_attribute("G", ["x", "y"]).unwrap();
        for i in 0..n {
            b.add_candidate(format!("c{i}"), [(g, i % 2)]).unwrap();
        }
        let db = b.build().unwrap();
        let profile = RankingProfile::new(vec![Ranking::identity(n); 2]).unwrap();
        Arc::new(EngineDataset::new(name, db, profile).unwrap())
    }

    #[test]
    fn register_is_idempotent_by_content() {
        let registry = DatasetRegistry::new(4);
        let (id, created) = registry.register(dataset("a", 4)).unwrap();
        assert!(created);
        assert!(id.starts_with("ds-"), "{id}");
        // Same content, different display name: same id, not re-created.
        let (again, created) = registry.register(dataset("b", 4)).unwrap();
        assert_eq!(id, again);
        assert!(!created);
        assert_eq!(registry.len(), 1);
        assert!(registry.get(&id).is_some());
    }

    #[test]
    fn resolve_and_remove_round_trip() {
        let registry = DatasetRegistry::new(4);
        let (id, _) = registry.register(dataset("a", 4)).unwrap();
        assert_eq!(registry.resolve(&id).unwrap().num_candidates(), 4);
        assert!(registry.remove(&id).is_some());
        assert!(registry.remove(&id).is_none());
        let err = registry.resolve(&id).unwrap_err();
        assert_eq!(err.kind, ApiErrorKind::NotFound);
        assert!(err.message.contains(&id));
        assert!(registry.is_empty());
    }

    #[test]
    fn full_registry_rejects_new_content_as_overloaded() {
        let registry = DatasetRegistry::new(2);
        registry.register(dataset("a", 4)).unwrap();
        registry.register(dataset("b", 6)).unwrap();
        let err = registry.register(dataset("c", 8)).unwrap_err();
        assert_eq!(err.kind, ApiErrorKind::Overloaded);
        // Existing content still registers idempotently at capacity.
        let (_, created) = registry.register(dataset("a2", 4)).unwrap();
        assert!(!created);
    }
}
