//! The persisted dataset registry behind the datasets CRUD operations.
//!
//! Interactive clients (FairFuse-style threshold exploration) re-query the
//! same candidate pool with varied deltas and methods. Re-uploading a
//! multi-megabyte dataset per request wastes client bandwidth and server parse
//! time, so the registry lets a client upload once and reference the dataset
//! by id (`"dataset": {"id": ...}` or legacy `"dataset_id"` in consensus and
//! audit bodies) for every later solve.
//!
//! Ids are **content fingerprints** ([`EngineDataset::fingerprint`] of the
//! originally uploaded content, the same key the engine's `PrecedenceCache`
//! uses), so a registered dataset shares the warm precedence matrix with
//! every inline request carrying identical content, and re-uploading
//! identical content is idempotent: same id back.
//!
//! # Versions
//!
//! Each id fronts a **version chain**: `PATCH /v1/datasets/{id}` edits append
//! a new [`EngineDataset`] under the same id with a monotonically increasing
//! `version` (the upload is version 1). The id stays stable across edits so
//! interactive sessions keep one handle, while every version has its own
//! content fingerprint — which is what keys both the precedence cache and
//! the response cache, so results for different versions can never alias.
//! A bounded number of historical versions is retained per id (oldest-first
//! eviction); resolving a pinned version that has been evicted is a
//! [`crate::ApiErrorKind::Conflict`], not a not-found, so clients can
//! distinguish "never existed" from "rotated away".

use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Mutex};

use mani_engine::EngineDataset;

use crate::error::ApiError;

/// Most datasets held at once; uploads beyond this answer
/// [`crate::ApiErrorKind::Overloaded`] until something is deleted. Bounds
/// worst-case registry memory the same way the response cache bounds outcome
/// memory.
pub const MAX_REGISTERED_DATASETS: usize = 1024;

/// Most historical versions retained per dataset id. Edits beyond this evict
/// the oldest retained version (the current version is never evicted).
pub const MAX_RETAINED_VERSIONS: usize = 8;

/// Canonical registry id for a dataset: its content fingerprint, hex-encoded.
pub fn dataset_id(dataset: &EngineDataset) -> String {
    format!("ds-{:016x}", dataset.fingerprint())
}

/// One resolved `(id, version)` pair: the stable handle plus the exact
/// dataset content it referred to at that version.
#[derive(Debug, Clone)]
pub struct RegisteredDataset {
    /// Stable registry id (content fingerprint of the original upload).
    pub id: String,
    /// Monotonic version under that id (the original upload is version 1).
    pub version: u64,
    /// The dataset content of this version.
    pub dataset: Arc<EngineDataset>,
}

impl RegisteredDataset {
    /// Hex-encoded content fingerprint of *this version's* content (differs
    /// from the id once the dataset has been patched).
    pub fn fingerprint_hex(&self) -> String {
        format!("{:016x}", self.dataset.fingerprint())
    }
}

/// The version chain behind one registry id.
#[derive(Debug)]
struct VersionChain {
    /// Retained `(version, dataset)` pairs, oldest first; the back is the
    /// current version.
    versions: VecDeque<(u64, Arc<EngineDataset>)>,
}

impl VersionChain {
    fn current(&self) -> &(u64, Arc<EngineDataset>) {
        self.versions.back().expect("version chain never empty")
    }
}

/// A bounded, thread-safe store of uploaded datasets keyed by content id,
/// each fronting a monotonic version chain.
#[derive(Debug)]
pub struct DatasetRegistry {
    inner: Mutex<HashMap<String, VersionChain>>,
    capacity: usize,
}

impl Default for DatasetRegistry {
    fn default() -> Self {
        Self::new(MAX_REGISTERED_DATASETS)
    }
}

impl DatasetRegistry {
    /// A registry bounded to `capacity` datasets (`0` means
    /// [`MAX_REGISTERED_DATASETS`]).
    pub fn new(capacity: usize) -> Self {
        Self {
            inner: Mutex::new(HashMap::new()),
            capacity: if capacity == 0 {
                MAX_REGISTERED_DATASETS
            } else {
                capacity
            },
        }
    }

    /// Registers a dataset, returning `(current version, created)`.
    /// Re-registering content whose id already exists is idempotent
    /// (`created == false`, the id's *current* version comes back); a full
    /// registry rejects *new* content as overloaded.
    pub fn register(
        &self,
        dataset: Arc<EngineDataset>,
    ) -> Result<(RegisteredDataset, bool), ApiError> {
        let id = dataset_id(&dataset);
        let mut inner = self.inner.lock().expect("dataset registry lock poisoned");
        if let Some(chain) = inner.get(&id) {
            let (version, dataset) = chain.current().clone();
            return Ok((
                RegisteredDataset {
                    id,
                    version,
                    dataset,
                },
                false,
            ));
        }
        if inner.len() >= self.capacity {
            return Err(ApiError::overloaded(format!(
                "dataset registry is full ({} entries); DELETE unused datasets first",
                self.capacity
            )));
        }
        inner.insert(
            id.clone(),
            VersionChain {
                versions: VecDeque::from([(1, Arc::clone(&dataset))]),
            },
        );
        Ok((
            RegisteredDataset {
                id,
                version: 1,
                dataset,
            },
            true,
        ))
    }

    /// Appends `dataset` as the next version of `id`, returning the new
    /// current version. Older versions beyond [`MAX_RETAINED_VERSIONS`] are
    /// evicted oldest-first.
    pub fn update(
        &self,
        id: &str,
        dataset: Arc<EngineDataset>,
    ) -> Result<RegisteredDataset, ApiError> {
        let mut inner = self.inner.lock().expect("dataset registry lock poisoned");
        let chain = inner
            .get_mut(id)
            .ok_or_else(|| Self::unknown_id_error(id))?;
        let version = chain.current().0 + 1;
        chain.versions.push_back((version, Arc::clone(&dataset)));
        while chain.versions.len() > MAX_RETAINED_VERSIONS {
            chain.versions.pop_front();
        }
        Ok(RegisteredDataset {
            id: id.to_string(),
            version,
            dataset,
        })
    }

    /// Looks an id's current version up.
    pub fn get(&self, id: &str) -> Option<Arc<EngineDataset>> {
        self.inner
            .lock()
            .expect("dataset registry lock poisoned")
            .get(id)
            .map(|chain| Arc::clone(&chain.current().1))
    }

    /// The current `(id, version, dataset)` triple for an id.
    pub fn current(&self, id: &str) -> Option<RegisteredDataset> {
        self.inner
            .lock()
            .expect("dataset registry lock poisoned")
            .get(id)
            .map(|chain| {
                let (version, dataset) = chain.current().clone();
                RegisteredDataset {
                    id: id.to_string(),
                    version,
                    dataset,
                }
            })
    }

    /// Resolves an id's current version or reports a not-found error.
    pub fn resolve(&self, id: &str) -> Result<Arc<EngineDataset>, ApiError> {
        self.get(id).ok_or_else(|| Self::unknown_id_error(id))
    }

    /// Resolves an id's current `(id, version, dataset)` triple or reports
    /// the not-found error.
    pub fn resolve_current(&self, id: &str) -> Result<RegisteredDataset, ApiError> {
        self.current(id).ok_or_else(|| Self::unknown_id_error(id))
    }

    /// Resolves a specific pinned version of an id. A version newer than the
    /// current one (or `0`) never existed and is a not-found; a version older
    /// than the oldest retained one *did* exist but has been evicted from the
    /// version chain, which is a [`crate::ApiErrorKind::Conflict`].
    pub fn resolve_version(&self, id: &str, version: u64) -> Result<RegisteredDataset, ApiError> {
        let inner = self.inner.lock().expect("dataset registry lock poisoned");
        let chain = inner.get(id).ok_or_else(|| Self::unknown_id_error(id))?;
        let current = chain.current().0;
        if version == 0 || version > current {
            return Err(ApiError::not_found(format!(
                "dataset `{id}` has no version {version} (current version is {current})"
            )));
        }
        match chain.versions.iter().find(|(v, _)| *v == version) {
            Some((_, dataset)) => Ok(RegisteredDataset {
                id: id.to_string(),
                version,
                dataset: Arc::clone(dataset),
            }),
            None => Err(ApiError::conflict(format!(
                "version {version} of dataset `{id}` has been evicted \
                 (oldest retained is {}, current is {current}); drop the pin \
                 or re-solve against the current version",
                chain.versions.front().map(|(v, _)| *v).unwrap_or(current),
            ))),
        }
    }

    /// Removes an id with its whole version chain, returning the dataset the
    /// current version held.
    pub fn remove(&self, id: &str) -> Option<Arc<EngineDataset>> {
        self.inner
            .lock()
            .expect("dataset registry lock poisoned")
            .remove(id)
            .map(|chain| Arc::clone(&chain.current().1))
    }

    /// Number of datasets (ids, not versions) currently registered.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .expect("dataset registry lock poisoned")
            .len()
    }

    /// True when nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The not-found error every unknown-id path reports.
    fn unknown_id_error(id: &str) -> ApiError {
        ApiError::not_found(format!(
            "no such dataset `{id}` (upload via POST /v1/datasets)"
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::ApiErrorKind;
    use mani_ranking::{CandidateDbBuilder, Ranking, RankingProfile};

    fn dataset(name: &str, n: usize) -> Arc<EngineDataset> {
        let mut b = CandidateDbBuilder::new();
        let g = b.add_attribute("G", ["x", "y"]).unwrap();
        for i in 0..n {
            b.add_candidate(format!("c{i}"), [(g, i % 2)]).unwrap();
        }
        let db = b.build().unwrap();
        let profile = RankingProfile::new(vec![Ranking::identity(n); 2]).unwrap();
        Arc::new(EngineDataset::new(name, db, profile).unwrap())
    }

    /// `base` with `extra` more identity rankings appended (a content edit).
    fn edited(base: &EngineDataset, extra: usize) -> Arc<EngineDataset> {
        let n = base.num_candidates();
        let mut rankings = base.profile().rankings().to_vec();
        rankings.extend((0..extra).map(|_| Ranking::identity(n).reversed()));
        Arc::new(
            EngineDataset::from_arcs(
                base.name(),
                Arc::clone(base.db()),
                Arc::new(RankingProfile::new(rankings).unwrap()),
            )
            .unwrap(),
        )
    }

    #[test]
    fn register_is_idempotent_by_content() {
        let registry = DatasetRegistry::new(4);
        let (registered, created) = registry.register(dataset("a", 4)).unwrap();
        assert!(created);
        assert!(registered.id.starts_with("ds-"), "{}", registered.id);
        assert_eq!(registered.version, 1);
        // Same content, different display name: same id, not re-created.
        let (again, created) = registry.register(dataset("b", 4)).unwrap();
        assert_eq!(registered.id, again.id);
        assert_eq!(again.version, 1);
        assert!(!created);
        assert_eq!(registry.len(), 1);
        assert!(registry.get(&registered.id).is_some());
    }

    #[test]
    fn resolve_and_remove_round_trip() {
        let registry = DatasetRegistry::new(4);
        let (registered, _) = registry.register(dataset("a", 4)).unwrap();
        let id = registered.id;
        assert_eq!(registry.resolve(&id).unwrap().num_candidates(), 4);
        assert!(registry.remove(&id).is_some());
        assert!(registry.remove(&id).is_none());
        let err = registry.resolve(&id).unwrap_err();
        assert_eq!(err.kind, ApiErrorKind::NotFound);
        assert!(err.message.contains(&id));
        assert!(registry.is_empty());
    }

    #[test]
    fn full_registry_rejects_new_content_as_overloaded() {
        let registry = DatasetRegistry::new(2);
        registry.register(dataset("a", 4)).unwrap();
        registry.register(dataset("b", 6)).unwrap();
        let err = registry.register(dataset("c", 8)).unwrap_err();
        assert_eq!(err.kind, ApiErrorKind::Overloaded);
        // Existing content still registers idempotently at capacity.
        let (_, created) = registry.register(dataset("a2", 4)).unwrap();
        assert!(!created);
    }

    #[test]
    fn updates_bump_versions_under_a_stable_id() {
        let registry = DatasetRegistry::new(4);
        let base = dataset("a", 4);
        let (registered, _) = registry.register(Arc::clone(&base)).unwrap();
        let id = registered.id.clone();
        let v2 = registry.update(&id, edited(&base, 1)).unwrap();
        assert_eq!(v2.id, id);
        assert_eq!(v2.version, 2);
        assert_ne!(v2.fingerprint_hex(), registered.fingerprint_hex());
        // The id resolves to the new current content.
        assert_eq!(registry.resolve(&id).unwrap().num_rankings(), 3);
        assert_eq!(registry.current(&id).unwrap().version, 2);
        // Both retained versions resolve by pin.
        assert_eq!(
            registry
                .resolve_version(&id, 1)
                .unwrap()
                .dataset
                .num_rankings(),
            2
        );
        assert_eq!(
            registry
                .resolve_version(&id, 2)
                .unwrap()
                .dataset
                .num_rankings(),
            3
        );
        // One id, however many versions.
        assert_eq!(registry.len(), 1);
        // Updating an unknown id fails with not-found.
        let err = registry.update("ds-nope", edited(&base, 2)).unwrap_err();
        assert_eq!(err.kind, ApiErrorKind::NotFound);
    }

    #[test]
    fn evicted_versions_conflict_and_unknown_versions_are_not_found() {
        let registry = DatasetRegistry::new(4);
        let base = dataset("a", 4);
        let (registered, _) = registry.register(Arc::clone(&base)).unwrap();
        let id = registered.id;
        // Push enough edits to rotate version 1 out of the retained window.
        for extra in 1..=MAX_RETAINED_VERSIONS {
            registry.update(&id, edited(&base, extra)).unwrap();
        }
        let current = registry.current(&id).unwrap().version;
        assert_eq!(current, (MAX_RETAINED_VERSIONS + 1) as u64);
        let evicted = registry.resolve_version(&id, 1).unwrap_err();
        assert_eq!(evicted.kind, ApiErrorKind::Conflict);
        assert!(evicted.message.contains("evicted"), "{}", evicted.message);
        let future = registry.resolve_version(&id, current + 1).unwrap_err();
        assert_eq!(future.kind, ApiErrorKind::NotFound);
        let zero = registry.resolve_version(&id, 0).unwrap_err();
        assert_eq!(zero.kind, ApiErrorKind::NotFound);
        let unknown = registry.resolve_version("ds-nope", 1).unwrap_err();
        assert_eq!(unknown.kind, ApiErrorKind::NotFound);
    }

    #[test]
    fn resolve_version_returns_the_pinned_content() {
        let registry = DatasetRegistry::new(4);
        let base = dataset("a", 4);
        let (registered, _) = registry.register(Arc::clone(&base)).unwrap();
        registry.update(&registered.id, edited(&base, 3)).unwrap();
        let pinned = registry.resolve_version(&registered.id, 1).unwrap();
        assert_eq!(pinned.dataset.num_rankings(), 2);
        assert_eq!(pinned.fingerprint_hex(), registered.fingerprint_hex());
    }
}
