//! Shared scoring helpers over profiles and precedence matrices.

use mani_ranking::{Parallelism, PrecedenceMatrix, RankingProfile};

/// Borda points per candidate: the total number of candidates ranked below it, summed over
/// all base rankings. O(|R| · n).
pub fn borda_points(profile: &RankingProfile) -> Vec<u64> {
    let n = profile.num_candidates();
    let mut points = vec![0u64; n];
    for ranking in profile.rankings() {
        for (pos, cand) in ranking.iter().enumerate() {
            points[cand.index()] += (n - 1 - pos) as u64;
        }
    }
    points
}

/// Borda points per candidate for a weighted profile: ranking `i` contributes its points
/// `weights[i]` times.
pub fn weighted_borda_points(profile: &RankingProfile, weights: &[u64]) -> Vec<u64> {
    let n = profile.num_candidates();
    let mut points = vec![0u64; n];
    for (ranking, &w) in profile.rankings().iter().zip(weights) {
        for (pos, cand) in ranking.iter().enumerate() {
            points[cand.index()] += (n - 1 - pos) as u64 * w;
        }
    }
    points
}

/// Copeland wins per candidate (ties count for both), straight from the precedence matrix.
pub fn copeland_wins(matrix: &PrecedenceMatrix) -> Vec<u32> {
    matrix.copeland_wins()
}

/// Copeland wins under an explicit kernel-parallelism budget: candidate-pair
/// sharded over contiguous candidate ranges, identical integers to
/// [`copeland_wins`] for every thread count.
pub fn copeland_wins_parallel(matrix: &PrecedenceMatrix, parallelism: &Parallelism) -> Vec<u32> {
    matrix.copeland_wins_parallel(parallelism)
}

/// Pairwise support scores under an explicit kernel-parallelism budget:
/// column-range sharded, bit-identical to
/// [`PrecedenceMatrix::pairwise_support_scores`] for every thread count.
pub fn pairwise_support_scores_parallel(
    matrix: &PrecedenceMatrix,
    parallelism: &Parallelism,
) -> Vec<u64> {
    matrix.pairwise_support_scores_parallel(parallelism)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mani_ranking::{Ranking, RankingProfile};

    #[test]
    fn borda_points_single_ranking() {
        let profile = RankingProfile::new(vec![Ranking::identity(4)]).unwrap();
        // top candidate gets n-1 = 3 points, next 2, etc.
        assert_eq!(borda_points(&profile), vec![3, 2, 1, 0]);
    }

    #[test]
    fn borda_points_sum_is_invariant() {
        let profile = RankingProfile::new(vec![
            Ranking::from_ids([2, 0, 1, 3]).unwrap(),
            Ranking::from_ids([3, 1, 0, 2]).unwrap(),
        ])
        .unwrap();
        let total: u64 = borda_points(&profile).iter().sum();
        // each ranking distributes 0+1+2+3 = 6 points
        assert_eq!(total, 12);
    }

    #[test]
    fn weighted_borda_scales_contributions() {
        let r1 = Ranking::identity(3);
        let r2 = r1.reversed();
        let profile = RankingProfile::new(vec![r1, r2]).unwrap();
        let unweighted = weighted_borda_points(&profile, &[1, 1]);
        assert_eq!(unweighted, borda_points(&profile));
        let weighted = weighted_borda_points(&profile, &[5, 1]);
        // candidate 0: 5*2 + 1*0 = 10; candidate 1: 5*1 + 1*1 = 6; candidate 2: 0 + 2 = 2
        assert_eq!(weighted, vec![10, 6, 2]);
    }

    #[test]
    fn copeland_wins_delegates_to_matrix() {
        let profile = RankingProfile::new(vec![Ranking::identity(3)]).unwrap();
        let wins = copeland_wins(&profile.precedence_matrix());
        assert_eq!(wins, vec![2, 1, 0]);
    }

    #[test]
    fn parallel_delegates_match_serial() {
        let profile = RankingProfile::new(vec![
            Ranking::from_ids([2, 0, 1, 3]).unwrap(),
            Ranking::from_ids([3, 1, 0, 2]).unwrap(),
        ])
        .unwrap();
        let matrix = profile.precedence_matrix();
        let par = Parallelism::new(4).with_min_candidates(0);
        assert_eq!(
            copeland_wins_parallel(&matrix, &par),
            copeland_wins(&matrix)
        );
        assert_eq!(
            pairwise_support_scores_parallel(&matrix, &par),
            matrix.pairwise_support_scores()
        );
    }
}
