//! Pick-A-Perm (Schalekamp & van Zuylen 2009): choose the best base ranking as consensus.
//!
//! Returns the base ranking with the lowest total Kendall tau distance to the rest of the
//! profile — a classic 2-approximation of the Kemeny optimum. The paper's Pick-Fairest-Perm
//! baseline is a fairness-aware variant (it picks the *fairest* base ranking instead); that
//! variant lives in `mani-core::baselines` because it needs fairness metrics.

use mani_ranking::{Ranking, RankingProfile, Result};

use crate::traits::ConsensusMethod;

/// The Pick-A-Perm consensus method.
#[derive(Debug, Clone, Copy, Default)]
pub struct PickAPerm;

impl PickAPerm {
    /// Creates a Pick-A-Perm aggregator.
    pub fn new() -> Self {
        Self
    }

    /// Index of the base ranking with the lowest total Kendall distance to the profile.
    pub fn best_index(&self, profile: &RankingProfile) -> Result<usize> {
        let mut best = 0usize;
        let mut best_cost = u64::MAX;
        for (i, ranking) in profile.rankings().iter().enumerate() {
            let cost = profile.total_kendall_distance(ranking)?;
            if cost < best_cost {
                best_cost = cost;
                best = i;
            }
        }
        Ok(best)
    }

    /// The chosen consensus ranking (a clone of the best base ranking).
    pub fn consensus(&self, profile: &RankingProfile) -> Result<Ranking> {
        Ok(profile.rankings()[self.best_index(profile)?].clone())
    }
}

impl ConsensusMethod for PickAPerm {
    fn name(&self) -> &'static str {
        "Pick-A-Perm"
    }

    fn aggregate(&self, profile: &RankingProfile) -> Result<Ranking> {
        self.consensus(profile)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn picks_the_majority_ranking() {
        let popular = Ranking::from_ids([1, 0, 2, 3]).unwrap();
        let outlier = popular.reversed();
        let profile = RankingProfile::new(vec![popular.clone(), popular.clone(), outlier]).unwrap();
        let picked = PickAPerm::new().consensus(&profile).unwrap();
        assert_eq!(picked, popular);
        assert_eq!(PickAPerm::new().best_index(&profile).unwrap(), 0);
    }

    #[test]
    fn single_ranking_profile_returns_it() {
        let r = Ranking::from_ids([2, 1, 0]).unwrap();
        let profile = RankingProfile::new(vec![r.clone()]).unwrap();
        assert_eq!(PickAPerm::new().consensus(&profile).unwrap(), r);
    }

    proptest! {
        #[test]
        fn prop_picked_ranking_is_a_member_and_minimises(n in 2usize..10, m in 1usize..7, seed in any::<u64>()) {
            let mut rng = StdRng::seed_from_u64(seed);
            let rankings: Vec<Ranking> = (0..m).map(|_| Ranking::random(n, &mut rng)).collect();
            let profile = RankingProfile::new(rankings.clone()).unwrap();
            let picker = PickAPerm::new();
            let picked = picker.consensus(&profile).unwrap();
            prop_assert!(rankings.contains(&picked));
            let picked_cost = profile.total_kendall_distance(&picked).unwrap();
            for r in &rankings {
                prop_assert!(picked_cost <= profile.total_kendall_distance(r).unwrap());
            }
        }
    }
}
