//! Weighted ranking profiles, the substrate of the paper's Kemeny-Weighted baseline.
//!
//! Kemeny-Weighted (Section IV-B) orders the base rankings from least to most fair and
//! weights the fairest ranking by `|R|` and the least fair by 1, then aggregates the
//! weighted profile. This module provides the weighting machinery independent of how the
//! weights are chosen; `mani-core::baselines` supplies the fairness-derived weights.

use mani_ranking::{PrecedenceMatrix, Ranking, RankingProfile, Result};

use crate::borda::ranking_from_points;
use crate::scoring::weighted_borda_points;

/// A ranking profile together with a positive integer weight per base ranking.
#[derive(Debug, Clone)]
pub struct WeightedProfile {
    profile: RankingProfile,
    weights: Vec<u64>,
}

impl WeightedProfile {
    /// Pairs a profile with per-ranking weights.
    pub fn new(profile: RankingProfile, weights: Vec<u64>) -> Result<Self> {
        if profile.len() != weights.len() {
            return Err(mani_ranking::RankingError::LengthMismatch {
                left: profile.len(),
                right: weights.len(),
            });
        }
        Ok(Self { profile, weights })
    }

    /// Uniform weights of one — equivalent to the unweighted profile.
    pub fn uniform(profile: RankingProfile) -> Self {
        let weights = vec![1u64; profile.len()];
        Self { profile, weights }
    }

    /// The underlying profile.
    pub fn profile(&self) -> &RankingProfile {
        &self.profile
    }

    /// The per-ranking weights.
    pub fn weights(&self) -> &[u64] {
        &self.weights
    }

    /// Total weight across the profile.
    pub fn total_weight(&self) -> u64 {
        self.weights.iter().sum()
    }

    /// Weighted precedence matrix: ranking `i` contributes `weights[i]` votes per pair.
    pub fn precedence_matrix(&self) -> Result<PrecedenceMatrix> {
        weighted_precedence_matrix(&self.profile, &self.weights)
    }

    /// Weighted Borda consensus: candidates ordered by weight-scaled Borda points.
    pub fn borda_consensus(&self) -> Ranking {
        let points = weighted_borda_points(&self.profile, &self.weights);
        ranking_from_points(&points)
    }

    /// Weighted Kendall-tau cost of a consensus ranking.
    pub fn weighted_cost(&self, consensus: &Ranking) -> Result<u64> {
        let mut total = 0u64;
        for (ranking, &w) in self.profile.rankings().iter().zip(&self.weights) {
            total += mani_ranking::kendall_tau(consensus, ranking)? * w;
        }
        Ok(total)
    }
}

/// Builds a weighted precedence matrix (weights capped at `u32::MAX` per ranking).
pub fn weighted_precedence_matrix(
    profile: &RankingProfile,
    weights: &[u64],
) -> Result<PrecedenceMatrix> {
    let narrowed: Vec<u32> = weights
        .iter()
        .map(|&w| u32::try_from(w).unwrap_or(u32::MAX))
        .collect();
    PrecedenceMatrix::from_weighted_rankings(profile.rankings(), &narrowed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use mani_ranking::CandidateId;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn rejects_mismatched_weight_vector() {
        let profile = RankingProfile::new(vec![Ranking::identity(3)]).unwrap();
        assert!(WeightedProfile::new(profile, vec![1, 2]).is_err());
    }

    #[test]
    fn uniform_weights_match_unweighted_borda() {
        let mut rng = StdRng::seed_from_u64(2);
        let rankings: Vec<Ranking> = (0..5).map(|_| Ranking::random(6, &mut rng)).collect();
        let profile = RankingProfile::new(rankings).unwrap();
        let weighted = WeightedProfile::uniform(profile.clone());
        let unweighted = crate::borda::BordaAggregator::new().consensus(&profile);
        assert_eq!(weighted.borda_consensus(), unweighted);
        assert_eq!(weighted.total_weight(), 5);
    }

    #[test]
    fn heavy_weight_dominates_consensus() {
        let favourite = Ranking::from_ids([2, 1, 0]).unwrap();
        let other = favourite.reversed();
        let profile = RankingProfile::new(vec![favourite.clone(), other.clone(), other]).unwrap();
        // Unweighted, the two copies of `other` win; weighting the favourite by 10 flips it.
        let weighted = WeightedProfile::new(profile, vec![10, 1, 1]).unwrap();
        let consensus = weighted.borda_consensus();
        assert_eq!(consensus.candidate_at(0), CandidateId(2));
    }

    #[test]
    fn weighted_cost_scales_with_weights() {
        let a = Ranking::identity(4);
        let b = a.reversed();
        let profile = RankingProfile::new(vec![a.clone(), b.clone()]).unwrap();
        let weighted = WeightedProfile::new(profile, vec![3, 1]).unwrap();
        // cost of consensus == a: 3*0 + 1*6 = 6; consensus == b: 3*6 + 0 = 18.
        assert_eq!(weighted.weighted_cost(&a).unwrap(), 6);
        assert_eq!(weighted.weighted_cost(&b).unwrap(), 18);
    }

    #[test]
    fn weighted_matrix_respects_weights() {
        let a = Ranking::identity(2);
        let b = a.reversed();
        let profile = RankingProfile::new(vec![a, b]).unwrap();
        let matrix = weighted_precedence_matrix(&profile, &[4, 1]).unwrap();
        assert_eq!(matrix.support_for(CandidateId(0), CandidateId(1)), 4);
        assert_eq!(matrix.support_for(CandidateId(1), CandidateId(0)), 1);
    }

    proptest! {
        #[test]
        fn prop_weighted_consensus_is_valid(n in 1usize..12, m in 1usize..6, seed in any::<u64>()) {
            let mut rng = StdRng::seed_from_u64(seed);
            let rankings: Vec<Ranking> = (0..m).map(|_| Ranking::random(n, &mut rng)).collect();
            let profile = RankingProfile::new(rankings).unwrap();
            let weights: Vec<u64> = (1..=m as u64).collect();
            let weighted = WeightedProfile::new(profile, weights).unwrap();
            prop_assert!(weighted.borda_consensus().check_invariants().is_ok());
        }
    }
}
