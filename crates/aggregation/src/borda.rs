//! Borda count aggregation (Borda 1784), the fastest Kemeny approximation used by the paper.
//!
//! Each candidate receives, from every base ranking, one point per candidate ranked below
//! it; candidates are ordered by descending total points. Ties are broken by candidate id.

use mani_ranking::{Ranking, RankingProfile, Result};

use crate::scoring::borda_points;
use crate::traits::ConsensusMethod;

/// The Borda count consensus method.
#[derive(Debug, Clone, Copy, Default)]
pub struct BordaAggregator;

impl BordaAggregator {
    /// Creates a Borda aggregator.
    pub fn new() -> Self {
        Self
    }

    /// Computes the Borda consensus for a profile.
    pub fn consensus(&self, profile: &RankingProfile) -> Ranking {
        let points = borda_points(profile);
        ranking_from_points(&points)
    }
}

/// Orders candidates by descending points, breaking ties by candidate id (ascending).
pub(crate) fn ranking_from_points(points: &[u64]) -> Ranking {
    let mut ids: Vec<u32> = (0..points.len() as u32).collect();
    ids.sort_by(|&a, &b| points[b as usize].cmp(&points[a as usize]).then(a.cmp(&b)));
    Ranking::from_ids(ids).expect("sorted ids form a permutation")
}

impl ConsensusMethod for BordaAggregator {
    fn name(&self) -> &'static str {
        "Borda"
    }

    fn aggregate(&self, profile: &RankingProfile) -> Result<Ranking> {
        Ok(self.consensus(profile))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn unanimous_profile_returns_the_common_ranking() {
        let r = Ranking::from_ids([3, 0, 2, 1]).unwrap();
        let profile = RankingProfile::new(vec![r.clone(); 5]).unwrap();
        assert_eq!(BordaAggregator::new().consensus(&profile), r);
    }

    #[test]
    fn majority_preference_dominates() {
        // Two rankings prefer 0 over 1, one prefers 1 over 0.
        let profile = RankingProfile::new(vec![
            Ranking::from_ids([0, 1, 2]).unwrap(),
            Ranking::from_ids([0, 1, 2]).unwrap(),
            Ranking::from_ids([1, 0, 2]).unwrap(),
        ])
        .unwrap();
        let consensus = BordaAggregator::new().consensus(&profile);
        assert!(consensus.prefers(0.into(), 1.into()));
        assert!(consensus.prefers(1.into(), 2.into()));
    }

    #[test]
    fn tie_broken_by_candidate_id() {
        // Symmetric profile: candidates 0 and 1 get identical points.
        let profile = RankingProfile::new(vec![
            Ranking::from_ids([0, 1]).unwrap(),
            Ranking::from_ids([1, 0]).unwrap(),
        ])
        .unwrap();
        let consensus = BordaAggregator::new().consensus(&profile);
        assert_eq!(consensus.candidate_at(0).0, 0);
    }

    #[test]
    fn trait_impl_matches_direct_call() {
        let mut rng = StdRng::seed_from_u64(9);
        let rankings: Vec<Ranking> = (0..4).map(|_| Ranking::random(6, &mut rng)).collect();
        let profile = RankingProfile::new(rankings).unwrap();
        let agg = BordaAggregator::new();
        assert_eq!(agg.aggregate(&profile).unwrap(), agg.consensus(&profile));
        assert_eq!(agg.name(), "Borda");
    }

    proptest! {
        #[test]
        fn prop_borda_is_valid_permutation(n in 1usize..25, m in 1usize..8, seed in any::<u64>()) {
            let mut rng = StdRng::seed_from_u64(seed);
            let rankings: Vec<Ranking> = (0..m).map(|_| Ranking::random(n, &mut rng)).collect();
            let profile = RankingProfile::new(rankings).unwrap();
            let consensus = BordaAggregator::new().consensus(&profile);
            prop_assert!(consensus.check_invariants().is_ok());
            prop_assert_eq!(consensus.len(), n);
        }

        #[test]
        fn prop_borda_no_worse_than_worst_base_ranking(n in 2usize..12, m in 1usize..6, seed in any::<u64>()) {
            // Sanity: the Borda consensus should represent the profile at least as well as the
            // *worst* base ranking does (a very weak but always-true statement).
            let mut rng = StdRng::seed_from_u64(seed);
            let rankings: Vec<Ranking> = (0..m).map(|_| Ranking::random(n, &mut rng)).collect();
            let profile = RankingProfile::new(rankings.clone()).unwrap();
            let consensus = BordaAggregator::new().consensus(&profile);
            let consensus_cost = profile.total_kendall_distance(&consensus).unwrap();
            let worst_base_cost = rankings
                .iter()
                .map(|r| profile.total_kendall_distance(r).unwrap())
                .max()
                .unwrap();
            let max_cost = mani_ranking::total_pairs(n) * m as u64;
            prop_assert!(consensus_cost <= max_cost);
            prop_assert!(worst_base_cost <= max_cost);
        }
    }
}
