//! Schulze method (Schulze 2018): strongest-path consensus ranking.
//!
//! The precedence matrix is treated as a weighted directed graph whose edge `a → b` carries
//! the number of base rankings preferring `a` over `b`. The *strength* of a path is the
//! weight of its weakest edge; `p[a][b]` is the strength of the strongest path from `a` to
//! `b`, computed with a Floyd–Warshall variant in O(n³). Candidates are then ordered by how
//! many opponents they beat in the strongest-path comparison (`p[a][b] > p[b][a]`), which
//! yields a complete, Condorcet-consistent order; ties are broken by candidate id.

use mani_ranking::{CandidateId, PrecedenceMatrix, Ranking, RankingProfile, Result};

use crate::borda::ranking_from_points;
use crate::traits::ConsensusMethod;

/// The Schulze consensus method.
#[derive(Debug, Clone, Copy, Default)]
pub struct SchulzeAggregator;

impl SchulzeAggregator {
    /// Creates a Schulze aggregator.
    pub fn new() -> Self {
        Self
    }

    /// Computes the matrix of strongest path strengths `p[a][b]`.
    ///
    /// Only edges with positive support participate (the standard "winning votes" variant:
    /// an edge exists from `a` to `b` when more rankings prefer `a` to `b` than vice versa).
    #[allow(clippy::needless_range_loop)] // Floyd-Warshall style: indices are the clearer idiom
    pub fn strongest_paths(&self, matrix: &PrecedenceMatrix) -> Vec<Vec<u64>> {
        let n = matrix.num_candidates();
        let mut p = vec![vec![0u64; n]; n];
        for a in 0..n {
            for b in 0..n {
                if a == b {
                    continue;
                }
                let (ca, cb) = (CandidateId(a as u32), CandidateId(b as u32));
                let support = matrix.support_for(ca, cb) as u64;
                let against = matrix.support_for(cb, ca) as u64;
                if support > against {
                    p[a][b] = support;
                }
            }
        }
        for k in 0..n {
            for a in 0..n {
                if a == k {
                    continue;
                }
                for b in 0..n {
                    if b == a || b == k {
                        continue;
                    }
                    let through_k = p[a][k].min(p[k][b]);
                    if through_k > p[a][b] {
                        p[a][b] = through_k;
                    }
                }
            }
        }
        p
    }

    /// Computes the Schulze consensus from a precomputed precedence matrix.
    #[allow(clippy::needless_range_loop)]
    pub fn consensus_from_matrix(&self, matrix: &PrecedenceMatrix) -> Ranking {
        let n = matrix.num_candidates();
        let p = self.strongest_paths(matrix);
        // Score = number of opponents beaten in the strongest-path relation.
        let mut scores = vec![0u64; n];
        for a in 0..n {
            for b in 0..n {
                if a != b && p[a][b] > p[b][a] {
                    scores[a] += 1;
                }
            }
        }
        ranking_from_points(&scores)
    }

    /// Computes the Schulze consensus for a profile.
    pub fn consensus(&self, profile: &RankingProfile) -> Ranking {
        self.consensus_from_matrix(&profile.precedence_matrix())
    }
}

impl ConsensusMethod for SchulzeAggregator {
    fn name(&self) -> &'static str {
        "Schulze"
    }

    fn aggregate(&self, profile: &RankingProfile) -> Result<Ranking> {
        Ok(self.consensus(profile))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn unanimous_profile_returns_the_common_ranking() {
        let r = Ranking::from_ids([2, 0, 3, 1]).unwrap();
        let profile = RankingProfile::new(vec![r.clone(); 4]).unwrap();
        assert_eq!(SchulzeAggregator::new().consensus(&profile), r);
    }

    #[test]
    fn condorcet_winner_is_ranked_first() {
        let profile = RankingProfile::new(vec![
            Ranking::from_ids([1, 0, 2]).unwrap(),
            Ranking::from_ids([1, 2, 0]).unwrap(),
            Ranking::from_ids([0, 1, 2]).unwrap(),
        ])
        .unwrap();
        let consensus = SchulzeAggregator::new().consensus(&profile);
        assert_eq!(consensus.candidate_at(0), CandidateId(1));
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn strongest_paths_classic_example() {
        // Wikipedia-style 3-candidate cycle check: A > B (2 of 3), B > C (2 of 3), C > A (2 of 3)
        // forms a majority cycle; strongest paths must still be computed consistently.
        let profile = RankingProfile::new(vec![
            Ranking::from_ids([0, 1, 2]).unwrap(),
            Ranking::from_ids([1, 2, 0]).unwrap(),
            Ranking::from_ids([2, 0, 1]).unwrap(),
        ])
        .unwrap();
        let matrix = profile.precedence_matrix();
        let p = SchulzeAggregator::new().strongest_paths(&matrix);
        // Every direct majority edge has weight 2, and the cycle gives every pair a path of
        // strength 2 in both directions -> complete tie.
        for a in 0..3 {
            for b in 0..3 {
                if a != b {
                    assert_eq!(p[a][b], 2, "p[{a}][{b}]");
                }
            }
        }
        // Ties are broken by id, so the consensus is the identity ranking.
        let consensus = SchulzeAggregator::new().consensus_from_matrix(&matrix);
        assert_eq!(consensus, Ranking::identity(3));
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn strongest_path_at_least_direct_support() {
        let mut rng = StdRng::seed_from_u64(23);
        let rankings: Vec<Ranking> = (0..7).map(|_| Ranking::random(6, &mut rng)).collect();
        let profile = RankingProfile::new(rankings).unwrap();
        let matrix = profile.precedence_matrix();
        let p = SchulzeAggregator::new().strongest_paths(&matrix);
        for a in 0..6 {
            for b in 0..6 {
                if a == b {
                    continue;
                }
                let (ca, cb) = (CandidateId(a as u32), CandidateId(b as u32));
                let support = matrix.support_for(ca, cb) as u64;
                let against = matrix.support_for(cb, ca) as u64;
                if support > against {
                    assert!(p[a][b] >= support);
                }
            }
        }
    }

    proptest! {
        #[test]
        fn prop_schulze_is_valid_permutation(n in 1usize..15, m in 1usize..8, seed in any::<u64>()) {
            let mut rng = StdRng::seed_from_u64(seed);
            let rankings: Vec<Ranking> = (0..m).map(|_| Ranking::random(n, &mut rng)).collect();
            let profile = RankingProfile::new(rankings).unwrap();
            let consensus = SchulzeAggregator::new().consensus(&profile);
            prop_assert!(consensus.check_invariants().is_ok());
        }

        #[test]
        fn prop_unanimous_profile_is_reproduced(n in 2usize..12, seed in any::<u64>()) {
            let mut rng = StdRng::seed_from_u64(seed);
            let base = Ranking::random(n, &mut rng);
            let profile = RankingProfile::new(vec![base.clone(); 3]).unwrap();
            prop_assert_eq!(SchulzeAggregator::new().consensus(&profile), base);
        }
    }
}
