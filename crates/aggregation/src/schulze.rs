//! Schulze method (Schulze 2018): strongest-path consensus ranking.
//!
//! The precedence matrix is treated as a weighted directed graph whose edge `a → b` carries
//! the number of base rankings preferring `a` over `b`. The *strength* of a path is the
//! weight of its weakest edge; `p[a][b]` is the strength of the strongest path from `a` to
//! `b`, computed with a Floyd–Warshall variant in O(n³). Candidates are then ordered by how
//! many opponents they beat in the strongest-path comparison (`p[a][b] > p[b][a]`), which
//! yields a complete, Condorcet-consistent order; ties are broken by candidate id.
//!
//! Two kernels implement the strongest-path computation:
//!
//! * [`SchulzeAggregator::strongest_paths`] — the straightforward nested-`Vec`
//!   reference implementation, retained for differential tests and as the
//!   serial baseline in `mani-bench`'s kernel benchmarks.
//! * [`SchulzeAggregator::strongest_paths_matrix`] — the production kernel: a
//!   flat row-major [`PathMatrix`], matrix rows read as slices, entire
//!   relaxation rows skipped when `p[a][k] == 0`, and the Floyd–Warshall
//!   `k`-step optionally parallelised by row blocks (rows are independent for
//!   a fixed `k`). Both kernels produce bit-identical strengths.

use std::sync::{Barrier, Mutex};

use mani_ranking::{
    shard_ranges, CandidateId, Parallelism, PrecedenceMatrix, Ranking, RankingProfile, Result,
};

use crate::borda::ranking_from_points;
use crate::traits::ConsensusMethod;

/// Flat row-major matrix of strongest path strengths.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathMatrix {
    n: usize,
    strengths: Vec<u64>,
}

impl PathMatrix {
    /// Number of candidates.
    pub fn num_candidates(&self) -> usize {
        self.n
    }

    /// Strength of the strongest path from `a` to `b`.
    pub fn strength(&self, a: usize, b: usize) -> u64 {
        self.strengths[a * self.n + b]
    }

    /// Row `a`: strengths of the strongest paths from `a` to every candidate.
    pub fn row(&self, a: usize) -> &[u64] {
        &self.strengths[a * self.n..][..self.n]
    }

    /// The strengths in the legacy nested layout.
    pub fn to_nested(&self) -> Vec<Vec<u64>> {
        self.strengths
            .chunks_exact(self.n)
            .map(<[u64]>::to_vec)
            .collect()
    }
}

/// The Schulze consensus method.
#[derive(Debug, Clone, Copy, Default)]
pub struct SchulzeAggregator;

impl SchulzeAggregator {
    /// Creates a Schulze aggregator.
    pub fn new() -> Self {
        Self
    }

    /// Computes the matrix of strongest path strengths `p[a][b]` — reference
    /// implementation in the legacy nested layout.
    ///
    /// Only edges with positive support participate (the standard "winning votes" variant:
    /// an edge exists from `a` to `b` when more rankings prefer `a` to `b` than vice versa).
    ///
    /// This is the differential-testing reference and the serial baseline of
    /// the kernel benchmarks; production call sites use
    /// [`SchulzeAggregator::strongest_paths_matrix`].
    #[allow(clippy::needless_range_loop)] // Floyd-Warshall style: indices are the clearer idiom
    pub fn strongest_paths(&self, matrix: &PrecedenceMatrix) -> Vec<Vec<u64>> {
        let n = matrix.num_candidates();
        let mut p = vec![vec![0u64; n]; n];
        for a in 0..n {
            for b in 0..n {
                if a == b {
                    continue;
                }
                let (ca, cb) = (CandidateId(a as u32), CandidateId(b as u32));
                let support = matrix.support_for(ca, cb) as u64;
                let against = matrix.support_for(cb, ca) as u64;
                if support > against {
                    p[a][b] = support;
                }
            }
        }
        for k in 0..n {
            for a in 0..n {
                if a == k {
                    continue;
                }
                for b in 0..n {
                    if b == a || b == k {
                        continue;
                    }
                    let through_k = p[a][k].min(p[k][b]);
                    if through_k > p[a][b] {
                        p[a][b] = through_k;
                    }
                }
            }
        }
        p
    }

    /// Computes strongest path strengths into a flat [`PathMatrix`],
    /// parallelising the Floyd–Warshall `k`-step by row blocks when
    /// `parallelism` allows it for this `n`.
    ///
    /// Bit-identical to [`SchulzeAggregator::strongest_paths`] for every
    /// thread count: row blocks partition independent rows, and the per-`k`
    /// arithmetic is unchanged.
    pub fn strongest_paths_matrix(
        &self,
        matrix: &PrecedenceMatrix,
        parallelism: &Parallelism,
    ) -> PathMatrix {
        let n = matrix.num_candidates();
        let mut strengths = vec![0u64; n * n];
        // Initial direct edges: p[a][b] = support(a, b) when it beats the
        // opposing support. support_for(a, b) is row(b)[a] in the precedence
        // layout, so the inner read of `against` walks row `a` sequentially.
        for a in 0..n {
            let row_a = matrix.row(CandidateId(a as u32));
            let dst = &mut strengths[a * n..][..n];
            for (b, (slot, &against)) in dst.iter_mut().zip(row_a).enumerate() {
                if b == a {
                    continue;
                }
                let support = matrix.row(CandidateId(b as u32))[a];
                if support > against {
                    *slot = support as u64;
                }
            }
        }
        let threads = parallelism.kernel_threads(n);
        if threads > 1 && n >= 2 {
            floyd_warshall_parallel(&mut strengths, n, threads);
        } else {
            floyd_warshall_serial(&mut strengths, n);
        }
        PathMatrix { n, strengths }
    }

    /// Computes the Schulze consensus from a precomputed precedence matrix.
    pub fn consensus_from_matrix(&self, matrix: &PrecedenceMatrix) -> Ranking {
        self.consensus_from_matrix_with(matrix, &Parallelism::serial())
    }

    /// Computes the Schulze consensus from a precedence matrix under an
    /// explicit kernel-parallelism budget.
    pub fn consensus_from_matrix_with(
        &self,
        matrix: &PrecedenceMatrix,
        parallelism: &Parallelism,
    ) -> Ranking {
        let n = matrix.num_candidates();
        let p = self.strongest_paths_matrix(matrix, parallelism);
        // Score = number of opponents beaten in the strongest-path relation.
        let mut scores = vec![0u64; n];
        for (a, score) in scores.iter_mut().enumerate() {
            let row_a = p.row(a);
            for (b, &forward) in row_a.iter().enumerate() {
                if b != a && forward > p.strength(b, a) {
                    *score += 1;
                }
            }
        }
        ranking_from_points(&scores)
    }

    /// Computes the Schulze consensus for a profile.
    pub fn consensus(&self, profile: &RankingProfile) -> Ranking {
        self.consensus_from_matrix(&profile.precedence_matrix())
    }
}

/// One Floyd–Warshall relaxation of row `a` through pivot `k`.
///
/// `row_a` is row `a` of the strength matrix, `row_k` a snapshot of row `k`,
/// and `pak` the current `p[a][k]`. Entries `b == k` are harmless
/// (`min(pak, p[k][k] = 0) = 0` never improves), and the `b == a` diagonal
/// write is undone afterwards — cheaper than branching in the hot loop.
fn relax_row(row_a: &mut [u64], row_k: &[u64], pak: u64, a: usize) {
    for (slot, &pkb) in row_a.iter_mut().zip(row_k) {
        let through_k = pak.min(pkb);
        if through_k > *slot {
            *slot = through_k;
        }
    }
    row_a[a] = 0;
}

/// Serial Floyd–Warshall over the flat strength buffer.
fn floyd_warshall_serial(p: &mut [u64], n: usize) {
    let mut row_k = vec![0u64; n];
    for k in 0..n {
        // Row k is stable during step k (p[k][k] = 0 relaxes nothing), so one
        // snapshot lets every other row read it without aliasing `p`.
        row_k.copy_from_slice(&p[k * n..][..n]);
        for a in 0..n {
            if a == k {
                continue;
            }
            let pak = p[a * n + k];
            if pak == 0 {
                // min(0, ·) can never improve a non-negative strength: the
                // whole relaxation row is a no-op. On realistic profiles this
                // skips roughly half of all (a, k) pairs.
                continue;
            }
            relax_row(&mut p[a * n..][..n], &row_k, pak, a);
        }
    }
}

/// Row-block-parallel Floyd–Warshall: for a fixed `k` every row is updated
/// independently, so `threads` workers each own a contiguous block of rows and
/// synchronise twice per `k`-step on a barrier (once after the pivot row is
/// published, once before the next pivot is written).
fn floyd_warshall_parallel(p: &mut [u64], n: usize, threads: usize) {
    let ranges = shard_ranges(n, threads);
    if ranges.len() <= 1 {
        floyd_warshall_serial(p, n);
        return;
    }
    let barrier = Barrier::new(ranges.len());
    let pivot_row = Mutex::new(vec![0u64; n]);
    // Split the flat buffer into per-worker row blocks.
    let mut blocks: Vec<(usize, &mut [u64])> = Vec::with_capacity(ranges.len());
    let mut rest = p;
    for range in &ranges {
        let (block, tail) = rest.split_at_mut(range.len() * n);
        blocks.push((range.start, block));
        rest = tail;
    }
    std::thread::scope(|scope| {
        for (start, block) in blocks {
            let barrier = &barrier;
            let pivot_row = &pivot_row;
            scope.spawn(move || {
                let rows = block.len() / n;
                let mut row_k = vec![0u64; n];
                for k in 0..n {
                    if (start..start + rows).contains(&k) {
                        let mut shared = pivot_row.lock().expect("pivot row lock poisoned");
                        shared.copy_from_slice(&block[(k - start) * n..][..n]);
                    }
                    // All workers see the published pivot row before relaxing.
                    barrier.wait();
                    row_k.copy_from_slice(&pivot_row.lock().expect("pivot row lock poisoned"));
                    for (local, row_a) in block.chunks_exact_mut(n).enumerate() {
                        let a = start + local;
                        if a == k {
                            continue;
                        }
                        let pak = row_a[k];
                        if pak == 0 {
                            continue;
                        }
                        relax_row(row_a, &row_k, pak, a);
                    }
                    // Nobody may publish pivot k+1 while a worker still reads
                    // the shared buffer for pivot k.
                    barrier.wait();
                }
            });
        }
    });
}

impl ConsensusMethod for SchulzeAggregator {
    fn name(&self) -> &'static str {
        "Schulze"
    }

    fn aggregate(&self, profile: &RankingProfile) -> Result<Ranking> {
        Ok(self.consensus(profile))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn unanimous_profile_returns_the_common_ranking() {
        let r = Ranking::from_ids([2, 0, 3, 1]).unwrap();
        let profile = RankingProfile::new(vec![r.clone(); 4]).unwrap();
        assert_eq!(SchulzeAggregator::new().consensus(&profile), r);
    }

    #[test]
    fn condorcet_winner_is_ranked_first() {
        let profile = RankingProfile::new(vec![
            Ranking::from_ids([1, 0, 2]).unwrap(),
            Ranking::from_ids([1, 2, 0]).unwrap(),
            Ranking::from_ids([0, 1, 2]).unwrap(),
        ])
        .unwrap();
        let consensus = SchulzeAggregator::new().consensus(&profile);
        assert_eq!(consensus.candidate_at(0), CandidateId(1));
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn strongest_paths_classic_example() {
        // Wikipedia-style 3-candidate cycle check: A > B (2 of 3), B > C (2 of 3), C > A (2 of 3)
        // forms a majority cycle; strongest paths must still be computed consistently.
        let profile = RankingProfile::new(vec![
            Ranking::from_ids([0, 1, 2]).unwrap(),
            Ranking::from_ids([1, 2, 0]).unwrap(),
            Ranking::from_ids([2, 0, 1]).unwrap(),
        ])
        .unwrap();
        let matrix = profile.precedence_matrix();
        let p = SchulzeAggregator::new().strongest_paths(&matrix);
        // Every direct majority edge has weight 2, and the cycle gives every pair a path of
        // strength 2 in both directions -> complete tie.
        for a in 0..3 {
            for b in 0..3 {
                if a != b {
                    assert_eq!(p[a][b], 2, "p[{a}][{b}]");
                }
            }
        }
        // Ties are broken by id, so the consensus is the identity ranking.
        let consensus = SchulzeAggregator::new().consensus_from_matrix(&matrix);
        assert_eq!(consensus, Ranking::identity(3));
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn strongest_path_at_least_direct_support() {
        let mut rng = StdRng::seed_from_u64(23);
        let rankings: Vec<Ranking> = (0..7).map(|_| Ranking::random(6, &mut rng)).collect();
        let profile = RankingProfile::new(rankings).unwrap();
        let matrix = profile.precedence_matrix();
        let p = SchulzeAggregator::new().strongest_paths(&matrix);
        for a in 0..6 {
            for b in 0..6 {
                if a == b {
                    continue;
                }
                let (ca, cb) = (CandidateId(a as u32), CandidateId(b as u32));
                let support = matrix.support_for(ca, cb) as u64;
                let against = matrix.support_for(cb, ca) as u64;
                if support > against {
                    assert!(p[a][b] >= support);
                }
            }
        }
    }

    #[test]
    fn flat_kernel_matches_reference_across_thread_counts() {
        let mut rng = StdRng::seed_from_u64(77);
        for n in [1usize, 2, 3, 7, 12, 25] {
            let rankings: Vec<Ranking> = (0..9).map(|_| Ranking::random(n, &mut rng)).collect();
            let matrix = RankingProfile::new(rankings).unwrap().precedence_matrix();
            let reference = SchulzeAggregator::new().strongest_paths(&matrix);
            for threads in [1usize, 2, 3, 8] {
                let par = Parallelism::new(threads).with_min_candidates(0);
                let flat = SchulzeAggregator::new().strongest_paths_matrix(&matrix, &par);
                assert_eq!(flat.num_candidates(), n);
                assert_eq!(flat.to_nested(), reference, "n = {n}, threads = {threads}");
                assert_eq!(
                    SchulzeAggregator::new().consensus_from_matrix_with(&matrix, &par),
                    SchulzeAggregator::new().consensus_from_matrix(&matrix),
                );
            }
        }
    }

    proptest! {
        #[test]
        fn prop_flat_kernel_bit_identical_to_reference(
            n in 1usize..14,
            m in 1usize..8,
            threads in 1usize..9,
            seed in any::<u64>()
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let rankings: Vec<Ranking> = (0..m).map(|_| Ranking::random(n, &mut rng)).collect();
            let matrix = RankingProfile::new(rankings).unwrap().precedence_matrix();
            let par = Parallelism::new(threads).with_min_candidates(0);
            let flat = SchulzeAggregator::new().strongest_paths_matrix(&matrix, &par);
            prop_assert_eq!(flat.to_nested(), SchulzeAggregator::new().strongest_paths(&matrix));
        }

        #[test]
        fn prop_schulze_is_valid_permutation(n in 1usize..15, m in 1usize..8, seed in any::<u64>()) {
            let mut rng = StdRng::seed_from_u64(seed);
            let rankings: Vec<Ranking> = (0..m).map(|_| Ranking::random(n, &mut rng)).collect();
            let profile = RankingProfile::new(rankings).unwrap();
            let consensus = SchulzeAggregator::new().consensus(&profile);
            prop_assert!(consensus.check_invariants().is_ok());
        }

        #[test]
        fn prop_unanimous_profile_is_reproduced(n in 2usize..12, seed in any::<u64>()) {
            let mut rng = StdRng::seed_from_u64(seed);
            let base = Ranking::random(n, &mut rng);
            let profile = RankingProfile::new(vec![base.clone(); 3]).unwrap();
            prop_assert_eq!(SchulzeAggregator::new().consensus(&profile), base);
        }
    }
}
