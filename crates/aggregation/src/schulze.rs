//! Schulze method (Schulze 2018): strongest-path consensus ranking.
//!
//! The precedence matrix is treated as a weighted directed graph whose edge `a → b` carries
//! the number of base rankings preferring `a` over `b`. The *strength* of a path is the
//! weight of its weakest edge; `p[a][b]` is the strength of the strongest path from `a` to
//! `b`, computed with a Floyd–Warshall variant in O(n³). Candidates are then ordered by how
//! many opponents they beat in the strongest-path comparison (`p[a][b] > p[b][a]`), which
//! yields a complete, Condorcet-consistent order; ties are broken by candidate id.
//!
//! Three kernels implement the strongest-path computation:
//!
//! * [`SchulzeAggregator::strongest_paths`] — the straightforward nested-`Vec`
//!   reference implementation, retained for differential tests and as the
//!   serial baseline in `mani-bench`'s kernel benchmarks.
//! * [`SchulzeAggregator::strongest_paths_flat`] — the untiled flat kernel
//!   (the PR-3 production kernel, now on `u32` cells): flat row-major
//!   [`PathMatrix`], rows read as slices, entire relaxation rows skipped when
//!   `p[a][k] == 0`.
//! * [`SchulzeAggregator::strongest_paths_matrix`] — the production
//!   dispatcher: cache-blocked (tiled) Floyd–Warshall on `u32` cells in the
//!   standard three-phase blocked order (diagonal tile, then the pivot
//!   row/column panels, then the remainder), optionally parallelised by
//!   tile-row blocks. Falls back to the untiled kernels below
//!   [`mani_ranking::parallel::FW_TILE_MIN_N`] candidates.
//!
//! All kernels produce bit-identical strengths: the max–min (widest-path)
//! closure is unique, every relaxation uses genuine path strengths (so no
//! kernel can overshoot it), and each kernel performs a complete
//! Floyd–Warshall schedule (so none can undershoot it).
//!
//! Cells are `u32`: path strengths are bounded by the largest pairwise
//! support, and [`PrecedenceMatrix`] construction rejects profiles whose total
//! ranking weight exceeds `u32::MAX`, so the conversion is exact. Halving the
//! cell width halves memory bandwidth and doubles SIMD lanes in the
//! autovectorized inner loops.

use std::sync::{Barrier, Mutex};

use mani_ranking::parallel::{record_fw_blocked_solve, record_pair_shard_tasks};
use mani_ranking::{
    run_parts, shard_ranges, CandidateId, Parallelism, PrecedenceMatrix, Ranking, RankingProfile,
    Result,
};

use crate::borda::ranking_from_points;
use crate::traits::ConsensusMethod;

/// Flat row-major matrix of strongest path strengths.
///
/// Cells are `u32`: strengths are min/max combinations of pairwise supports,
/// which the precedence-matrix build guarantees fit in `u32`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathMatrix {
    n: usize,
    strengths: Vec<u32>,
}

impl PathMatrix {
    /// Number of candidates.
    pub fn num_candidates(&self) -> usize {
        self.n
    }

    /// Strength of the strongest path from `a` to `b`.
    pub fn strength(&self, a: usize, b: usize) -> u32 {
        self.strengths[a * self.n + b]
    }

    /// Row `a`: strengths of the strongest paths from `a` to every candidate.
    pub fn row(&self, a: usize) -> &[u32] {
        &self.strengths[a * self.n..][..self.n]
    }

    /// The strengths in the legacy nested `u64` layout.
    ///
    /// **Compat shim for differential tests only**: it exists solely to
    /// compare against [`SchulzeAggregator::strongest_paths`], allocates
    /// `n + 1` vectors and widens every cell, and must not be called on hot
    /// paths — production consumers read [`PathMatrix::row`] /
    /// [`PathMatrix::strength`] directly.
    pub fn to_nested(&self) -> Vec<Vec<u64>> {
        self.strengths
            .chunks_exact(self.n)
            .map(|row| row.iter().map(|&s| s as u64).collect())
            .collect()
    }
}

/// The Schulze consensus method.
#[derive(Debug, Clone, Copy, Default)]
pub struct SchulzeAggregator;

impl SchulzeAggregator {
    /// Creates a Schulze aggregator.
    pub fn new() -> Self {
        Self
    }

    /// Computes the matrix of strongest path strengths `p[a][b]` — reference
    /// implementation in the legacy nested layout.
    ///
    /// Only edges with positive support participate (the standard "winning votes" variant:
    /// an edge exists from `a` to `b` when more rankings prefer `a` to `b` than vice versa).
    ///
    /// This is the differential-testing reference and the serial baseline of
    /// the kernel benchmarks; production call sites use
    /// [`SchulzeAggregator::strongest_paths_matrix`].
    #[allow(clippy::needless_range_loop)] // Floyd-Warshall style: indices are the clearer idiom
    pub fn strongest_paths(&self, matrix: &PrecedenceMatrix) -> Vec<Vec<u64>> {
        let n = matrix.num_candidates();
        let mut p = vec![vec![0u64; n]; n];
        for a in 0..n {
            for b in 0..n {
                if a == b {
                    continue;
                }
                let (ca, cb) = (CandidateId(a as u32), CandidateId(b as u32));
                let support = matrix.support_for(ca, cb) as u64;
                let against = matrix.support_for(cb, ca) as u64;
                if support > against {
                    p[a][b] = support;
                }
            }
        }
        for k in 0..n {
            for a in 0..n {
                if a == k {
                    continue;
                }
                for b in 0..n {
                    if b == a || b == k {
                        continue;
                    }
                    let through_k = p[a][k].min(p[k][b]);
                    if through_k > p[a][b] {
                        p[a][b] = through_k;
                    }
                }
            }
        }
        p
    }

    /// Computes strongest path strengths with the untiled flat serial kernel
    /// (the PR-3 production kernel ported to `u32` cells).
    ///
    /// Kept public as the benchmark comparison point for the tiled kernel and
    /// as the middle rung of the differential tests; production call sites use
    /// [`SchulzeAggregator::strongest_paths_matrix`].
    pub fn strongest_paths_flat(&self, matrix: &PrecedenceMatrix) -> PathMatrix {
        let n = matrix.num_candidates();
        let mut strengths = direct_edges(matrix);
        floyd_warshall_serial(&mut strengths, n);
        zero_diagonal(&mut strengths, n);
        PathMatrix { n, strengths }
    }

    /// Computes strongest path strengths into a flat [`PathMatrix`], choosing
    /// the kernel from `parallelism`: tile size via
    /// [`Parallelism::fw_tile_size`] (auto-tiled at
    /// [`mani_ranking::parallel::FW_TILE_MIN_N`] candidates and above, untiled
    /// below) and thread count via [`Parallelism::kernel_threads`]
    /// (parallelised by row blocks, or tile-row blocks when tiled).
    ///
    /// Bit-identical to [`SchulzeAggregator::strongest_paths`] for every tile
    /// size and thread count: the widest-path closure is unique, so any
    /// complete Floyd–Warshall schedule — blocked or not, sharded or not —
    /// computes the same integers.
    pub fn strongest_paths_matrix(
        &self,
        matrix: &PrecedenceMatrix,
        parallelism: &Parallelism,
    ) -> PathMatrix {
        let n = matrix.num_candidates();
        let mut strengths = direct_edges(matrix);
        let tile = parallelism.fw_tile_size(n);
        let threads = parallelism.kernel_threads(n);
        if tile < n {
            let nb = n.div_ceil(tile);
            if threads > 1 && nb > 1 {
                floyd_warshall_tiled_parallel(&mut strengths, n, tile, threads);
            } else {
                floyd_warshall_tiled_serial(&mut strengths, n, tile);
            }
            record_fw_blocked_solve((nb * nb * nb) as u64);
        } else if threads > 1 && n >= 2 {
            floyd_warshall_parallel(&mut strengths, n, threads);
        } else {
            floyd_warshall_serial(&mut strengths, n);
        }
        zero_diagonal(&mut strengths, n);
        PathMatrix { n, strengths }
    }

    /// Computes the Schulze consensus from a precomputed precedence matrix.
    pub fn consensus_from_matrix(&self, matrix: &PrecedenceMatrix) -> Ranking {
        self.consensus_from_matrix_with(matrix, &Parallelism::serial())
    }

    /// Computes the Schulze consensus from a precedence matrix under an
    /// explicit kernel-parallelism budget. The O(n²) beat-count scoring pass
    /// is sharded over candidate ranges when the budget allows; each
    /// candidate's score is an independent count, so the scores (and the
    /// resulting ranking) are identical for every thread count.
    pub fn consensus_from_matrix_with(
        &self,
        matrix: &PrecedenceMatrix,
        parallelism: &Parallelism,
    ) -> Ranking {
        let n = matrix.num_candidates();
        let p = self.strongest_paths_matrix(matrix, parallelism);
        // Score = number of opponents beaten in the strongest-path relation.
        let threads = parallelism.kernel_threads(n);
        let scores = if threads > 1 {
            let p = &p;
            let parts: Vec<_> = shard_ranges(n, threads)
                .into_iter()
                .map(|range| {
                    move || {
                        let mut scores = vec![0u64; range.len()];
                        for (score, a) in scores.iter_mut().zip(range.clone()) {
                            let row_a = p.row(a);
                            for (b, &forward) in row_a.iter().enumerate() {
                                if b != a && forward > p.strength(b, a) {
                                    *score += 1;
                                }
                            }
                        }
                        scores
                    }
                })
                .collect();
            record_pair_shard_tasks(parts.len() as u64);
            let mut scores = Vec::with_capacity(n);
            for part in run_parts(threads, parts) {
                scores.extend_from_slice(&part);
            }
            scores
        } else {
            let mut scores = vec![0u64; n];
            for (a, score) in scores.iter_mut().enumerate() {
                let row_a = p.row(a);
                for (b, &forward) in row_a.iter().enumerate() {
                    if b != a && forward > p.strength(b, a) {
                        *score += 1;
                    }
                }
            }
            scores
        };
        ranking_from_points(&scores)
    }

    /// Computes the Schulze consensus for a profile.
    pub fn consensus(&self, profile: &RankingProfile) -> Ranking {
        self.consensus_from_matrix(&profile.precedence_matrix())
    }
}

/// Initial direct edges: `p[a][b] = support(a, b)` when it beats the opposing
/// support. `support_for(a, b)` is `row(b)[a]` in the precedence layout, so
/// the inner read of `against` walks row `a` sequentially.
fn direct_edges(matrix: &PrecedenceMatrix) -> Vec<u32> {
    let n = matrix.num_candidates();
    let mut strengths = vec![0u32; n * n];
    for a in 0..n {
        let row_a = matrix.row(CandidateId(a as u32));
        let dst = &mut strengths[a * n..][..n];
        for (b, (slot, &against)) in dst.iter_mut().zip(row_a).enumerate() {
            if b == a {
                continue;
            }
            let support = matrix.row(CandidateId(b as u32))[a];
            if support > against {
                *slot = support;
            }
        }
    }
    strengths
}

/// Restores `p[a][a] = 0` after a kernel run.
///
/// The kernels let diagonal cells grow during relaxation (a cycle strength is
/// a genuine path strength, so `min`-ing against it can never corrupt an
/// off-diagonal cell) and pay one cheap pass here instead of branching in the
/// O(n³) hot loop.
fn zero_diagonal(p: &mut [u32], n: usize) {
    for a in 0..n {
        p[a * n + a] = 0;
    }
}

/// One branchless widest-path relaxation of a full row: for every column `b`,
/// `row_a[b] = max(row_a[b], min(pak, row_k[b]))`. Equal-length zipped slices
/// with no bounds checks, so the loop autovectorizes (8 `u32` lanes per AVX2
/// op).
fn relax_full_row(row_a: &mut [u32], row_k: &[u32], pak: u32) {
    for (slot, &pkb) in row_a.iter_mut().zip(row_k) {
        *slot = (*slot).max(pak.min(pkb));
    }
}

/// Serial untiled Floyd–Warshall over the flat strength buffer.
fn floyd_warshall_serial(p: &mut [u32], n: usize) {
    let mut row_k = vec![0u32; n];
    for k in 0..n {
        // Row k is stable during step k (relaxing it through itself is a
        // no-op), so one snapshot lets every other row read it without
        // aliasing `p`.
        row_k.copy_from_slice(&p[k * n..][..n]);
        for a in 0..n {
            if a == k {
                continue;
            }
            let pak = p[a * n + k];
            if pak == 0 {
                // min(0, ·) can never improve a non-negative strength: the
                // whole relaxation row is a no-op. On realistic profiles this
                // skips roughly half of all (a, k) pairs.
                continue;
            }
            relax_full_row(&mut p[a * n..][..n], &row_k, pak);
        }
    }
}

/// Row-block-parallel untiled Floyd–Warshall: for a fixed `k` every row is
/// updated independently, so `threads` workers each own a contiguous block of
/// rows and synchronise twice per `k`-step on a barrier (once after the pivot
/// row is published, once before the next pivot is written).
fn floyd_warshall_parallel(p: &mut [u32], n: usize, threads: usize) {
    let ranges = shard_ranges(n, threads);
    if ranges.len() <= 1 {
        floyd_warshall_serial(p, n);
        return;
    }
    let barrier = Barrier::new(ranges.len());
    let pivot_row = Mutex::new(vec![0u32; n]);
    // Split the flat buffer into per-worker row blocks.
    let mut blocks: Vec<(usize, &mut [u32])> = Vec::with_capacity(ranges.len());
    let mut rest = p;
    for range in &ranges {
        let (block, tail) = rest.split_at_mut(range.len() * n);
        blocks.push((range.start, block));
        rest = tail;
    }
    std::thread::scope(|scope| {
        for (start, block) in blocks {
            let barrier = &barrier;
            let pivot_row = &pivot_row;
            scope.spawn(move || {
                let rows = block.len() / n;
                let mut row_k = vec![0u32; n];
                for k in 0..n {
                    if (start..start + rows).contains(&k) {
                        let mut shared = pivot_row.lock().expect("pivot row lock poisoned");
                        shared.copy_from_slice(&block[(k - start) * n..][..n]);
                    }
                    // All workers see the published pivot row before relaxing.
                    barrier.wait();
                    row_k.copy_from_slice(&pivot_row.lock().expect("pivot row lock poisoned"));
                    for (local, row_a) in block.chunks_exact_mut(n).enumerate() {
                        let a = start + local;
                        if a == k {
                            continue;
                        }
                        let pak = row_a[k];
                        if pak == 0 {
                            continue;
                        }
                        relax_full_row(row_a, &row_k, pak);
                    }
                    // Nobody may publish pivot k+1 while a worker still reads
                    // the shared buffer for pivot k.
                    barrier.wait();
                }
            });
        }
    });
}

/// Phase 1 + 2 (row panel) of a `k`-block: closes the pivot rows `k0..k1` —
/// full width, which covers the diagonal tile and the row panel together —
/// against their own pivots with a mini Floyd–Warshall (`k` ascending,
/// snapshot of the self-dependent pivot row per step).
///
/// `block` is a contiguous row block starting at matrix row `row_start` that
/// contains rows `k0..k1`; `row_k` is an `n`-cell scratch buffer.
fn close_pivot_rows(
    block: &mut [u32],
    n: usize,
    row_start: usize,
    k0: usize,
    k1: usize,
    row_k: &mut [u32],
) {
    for k in k0..k1 {
        row_k.copy_from_slice(&block[(k - row_start) * n..][..n]);
        for a in k0..k1 {
            if a == k {
                continue;
            }
            let row_a = &mut block[(a - row_start) * n..][..n];
            let pak = row_a[k];
            if pak == 0 {
                continue;
            }
            relax_full_row(row_a, row_k, pak);
        }
    }
}

/// Phase 2 (column panel) for one row: relaxes the pivot-column segment
/// `seg = p[a][k0..k1]` through pivots `k0..k1` in ascending order. The
/// segment is self-dependent — `p[a][k]` for a later pivot may be improved by
/// an earlier one — so `pak` is re-read from the segment each step.
fn relax_pivot_segment(seg: &mut [u32], panel: &[u32], n: usize, k0: usize) {
    for t in 0..seg.len() {
        let pak = seg[t];
        if pak == 0 {
            continue;
        }
        let brow = &panel[t * n + k0..][..seg.len()];
        for (slot, &pkb) in seg.iter_mut().zip(brow) {
            *slot = (*slot).max(pak.min(pkb));
        }
    }
}

/// SIMD-register width (in `u32` lanes) for the phase-3 accumulator: 64 bytes,
/// i.e. two AVX2 or one AVX-512 register's worth per accumulator block.
const PHASE3_LANES: usize = 32;

/// Phase 3 (remainder) for one row and one column tile: relaxes
/// `seg = p[a][j0..j0 + seg.len()]` through the block's pivots. `pa[t]` is the
/// final `p[a][k0 + t]` for this block (the column panel runs first), `panel`
/// the closed pivot rows, so no cell read here is concurrently written.
///
/// Because every `pa[t]` and panel cell is already final, the `t`-loop is a
/// pure `max` reduction — reorderable without changing a single bit. The
/// kernel exploits that by running `j`-outer / `t`-inner with a fixed-width
/// accumulator that the compiler keeps in vector registers: each relaxation
/// costs one panel load instead of the load + load + store of a `t`-outer
/// sweep. This register blocking is what the cache blocking buys — the flat
/// kernel's global `k` steps are sequentially dependent, so it cannot batch
/// pivots this way.
fn relax_segment(seg: &mut [u32], pa: &[u32], panel: &[u32], n: usize, j0: usize) {
    let mut chunks = seg.chunks_exact_mut(PHASE3_LANES);
    let mut j = j0;
    for chunk in &mut chunks {
        let mut acc = [0u32; PHASE3_LANES];
        acc.copy_from_slice(chunk);
        for (t, &pak) in pa.iter().enumerate() {
            if pak == 0 {
                continue;
            }
            let brow: &[u32; PHASE3_LANES] = panel[t * n + j..][..PHASE3_LANES]
                .try_into()
                .expect("panel tile chunk is PHASE3_LANES wide");
            for (slot, &pkb) in acc.iter_mut().zip(brow) {
                *slot = (*slot).max(pak.min(pkb));
            }
        }
        chunk.copy_from_slice(&acc);
        j += PHASE3_LANES;
    }
    let tail = chunks.into_remainder();
    for (t, &pak) in pa.iter().enumerate() {
        if pak == 0 {
            continue;
        }
        let brow = &panel[t * n + j..][..tail.len()];
        for (slot, &pkb) in tail.iter_mut().zip(brow) {
            *slot = (*slot).max(pak.min(pkb));
        }
    }
}

/// Rows relaxed together in phase 3: one panel load is shared by this many
/// row accumulators (GEMM-style register blocking in the row dimension), so
/// the per-relaxation cost drops from one load + one `min` + one `max` to
/// `1/ROW_GROUP` loads + one `min` + one `max`.
const ROW_GROUP: usize = 8;

/// Phase 3 for one column tile of a group of `ROW_GROUP` contiguous rows
/// (`group` is `ROW_GROUP × n`, `pa` is `ROW_GROUP × width` final
/// pivot-column strengths). Each loaded panel chunk feeds all `ROW_GROUP`
/// accumulators; the `pak == 0` skip is dropped here because a zero pivot
/// strength relaxes to `max(slot, 0) = slot` — a bit-exact no-op — and the
/// branchless form keeps the accumulators in vector registers.
fn relax_segment_group(
    group: &mut [u32],
    pa: &[u32],
    panel: &[u32],
    n: usize,
    width: usize,
    j0: usize,
    j1: usize,
) {
    let mut j = j0;
    while j + PHASE3_LANES <= j1 {
        let mut acc = [[0u32; PHASE3_LANES]; ROW_GROUP];
        for (r, acc_r) in acc.iter_mut().enumerate() {
            acc_r.copy_from_slice(&group[r * n + j..][..PHASE3_LANES]);
        }
        for t in 0..width {
            let brow: &[u32; PHASE3_LANES] = panel[t * n + j..][..PHASE3_LANES]
                .try_into()
                .expect("panel chunk is PHASE3_LANES wide");
            for (r, acc_r) in acc.iter_mut().enumerate() {
                let pak = pa[r * width + t];
                for (slot, &pkb) in acc_r.iter_mut().zip(brow) {
                    *slot = (*slot).max(pak.min(pkb));
                }
            }
        }
        for (r, acc_r) in acc.iter().enumerate() {
            group[r * n + j..][..PHASE3_LANES].copy_from_slice(acc_r);
        }
        j += PHASE3_LANES;
    }
    if j < j1 {
        for r in 0..ROW_GROUP {
            let seg = &mut group[r * n + j..][..j1 - j];
            relax_segment_tail(seg, &pa[r * width..][..width], panel, n, j);
        }
    }
}

/// Scalar (`t`-outer) phase-3 fallback for a sub-lane-width column tail.
fn relax_segment_tail(seg: &mut [u32], pa: &[u32], panel: &[u32], n: usize, j0: usize) {
    for (t, &pak) in pa.iter().enumerate() {
        if pak == 0 {
            continue;
        }
        let brow = &panel[t * n + j0..][..seg.len()];
        for (slot, &pkb) in seg.iter_mut().zip(brow) {
            *slot = (*slot).max(pak.min(pkb));
        }
    }
}

/// Column panel + remainder phases for a group of `ROW_GROUP` contiguous
/// non-pivot rows. Phase 2 (the self-dependent pivot-column segment) runs per
/// row; phase 3 runs over the whole group per column tile so panel loads are
/// shared.
fn relax_row_group(
    group: &mut [u32],
    panel: &[u32],
    pa: &mut [u32],
    n: usize,
    tile: usize,
    k0: usize,
    k1: usize,
) {
    let width = k1 - k0;
    for r in 0..ROW_GROUP {
        let row = &mut group[r * n..][..n];
        relax_pivot_segment(&mut row[k0..k1], panel, n, k0);
        pa[r * width..][..width].copy_from_slice(&row[k0..k1]);
    }
    let mut j0 = 0;
    while j0 < n {
        let j1 = (j0 + tile).min(n);
        if j0 != k0 {
            relax_segment_group(group, &pa[..ROW_GROUP * width], panel, n, width, j0, j1);
        }
        j0 = j1;
    }
}

/// Relaxes every row of a contiguous region against the closed pivot panel.
/// The region must contain no pivot row (callers split around the pivot
/// block). Full groups of [`ROW_GROUP`] rows take the register-blocked path;
/// the remainder rows fall back to the single-row kernel. `pa` is a
/// `ROW_GROUP × tile` scratch buffer.
fn relax_rows(
    region: &mut [u32],
    panel: &[u32],
    pa: &mut [u32],
    n: usize,
    tile: usize,
    k0: usize,
    k1: usize,
) {
    let width = k1 - k0;
    let mut groups = region.chunks_exact_mut(ROW_GROUP * n);
    for group in &mut groups {
        relax_row_group(group, panel, pa, n, tile, k0, k1);
    }
    for row in groups.into_remainder().chunks_exact_mut(n) {
        relax_row_blocked(row, panel, &mut pa[..width], n, tile, k0, k1);
    }
}

/// Column panel + remainder phases for one non-pivot row of a `k`-block.
fn relax_row_blocked(
    row_a: &mut [u32],
    panel: &[u32],
    pa: &mut [u32],
    n: usize,
    tile: usize,
    k0: usize,
    k1: usize,
) {
    relax_pivot_segment(&mut row_a[k0..k1], panel, n, k0);
    pa.copy_from_slice(&row_a[k0..k1]);
    let mut j0 = 0;
    while j0 < n {
        let j1 = (j0 + tile).min(n);
        if j0 != k0 {
            relax_segment(&mut row_a[j0..j1], pa, panel, n, j0);
        }
        j0 = j1;
    }
}

/// Serial cache-blocked Floyd–Warshall with `tile × tile` tiles.
///
/// Per `k`-block (pivots `k0..k1`) the standard three-phase blocked order
/// runs: the diagonal tile and pivot row panel are closed in place
/// ([`close_pivot_rows`]), the closed pivot rows are snapshotted into `panel`
/// (so every other row can read them without aliasing), then each remaining
/// row relaxes its pivot-column segment (phase 2) followed by the other
/// column tiles (phase 3). Working-set per phase-3 step: one `tile`-cell row
/// segment, a `tile`-cell pivot-strength cache, and one `tile × tile` panel
/// tile — sized for L1 at the default tile of 64 (16 KiB per tile).
fn floyd_warshall_tiled_serial(p: &mut [u32], n: usize, tile: usize) {
    let nb = n.div_ceil(tile);
    let mut panel = vec![0u32; tile * n];
    let mut row_k = vec![0u32; n];
    let mut pa = vec![0u32; ROW_GROUP * tile];
    for kb in 0..nb {
        let k0 = kb * tile;
        let k1 = (k0 + tile).min(n);
        let width = k1 - k0;
        close_pivot_rows(p, n, 0, k0, k1, &mut row_k);
        panel[..width * n].copy_from_slice(&p[k0 * n..k1 * n]);
        let (before, rest) = p.split_at_mut(k0 * n);
        let after = &mut rest[width * n..];
        relax_rows(before, &panel, &mut pa, n, tile, k0, k1);
        relax_rows(after, &panel, &mut pa, n, tile, k0, k1);
    }
}

/// Tile-row-parallel cache-blocked Floyd–Warshall.
///
/// Workers own contiguous blocks of *tile rows* (so every `k`-block's pivot
/// rows live inside exactly one worker). Per `k`-block the owner closes the
/// pivot rows (phases 1 + 2-row) and publishes them into a shared panel
/// buffer; after a barrier every worker copies the panel locally and runs the
/// column-panel and remainder phases on its own rows. A second barrier keeps
/// block `kb + 1`'s publish from racing block `kb`'s readers — the same
/// two-barrier schedule as the untiled parallel kernel, at tile-row
/// granularity.
fn floyd_warshall_tiled_parallel(p: &mut [u32], n: usize, tile: usize, threads: usize) {
    let nb = n.div_ceil(tile);
    let tile_ranges = shard_ranges(nb, threads);
    if tile_ranges.len() <= 1 {
        floyd_warshall_tiled_serial(p, n, tile);
        return;
    }
    let barrier = Barrier::new(tile_ranges.len());
    let shared_panel = Mutex::new(vec![0u32; tile * n]);
    // Split the flat buffer into per-worker blocks of whole tile rows.
    let mut blocks: Vec<(usize, &mut [u32])> = Vec::with_capacity(tile_ranges.len());
    let mut rest = p;
    for range in &tile_ranges {
        let row_start = range.start * tile;
        let row_end = (range.end * tile).min(n);
        let (block, tail) = rest.split_at_mut((row_end - row_start) * n);
        blocks.push((row_start, block));
        rest = tail;
    }
    std::thread::scope(|scope| {
        for (row_start, block) in blocks {
            let barrier = &barrier;
            let shared_panel = &shared_panel;
            scope.spawn(move || {
                let rows = block.len() / n;
                let mut panel = vec![0u32; tile * n];
                let mut row_k = vec![0u32; n];
                let mut pa = vec![0u32; ROW_GROUP * tile];
                for kb in 0..nb {
                    let k0 = kb * tile;
                    let k1 = (k0 + tile).min(n);
                    let width = k1 - k0;
                    let owns_pivot = (row_start..row_start + rows).contains(&k0);
                    if owns_pivot {
                        close_pivot_rows(block, n, row_start, k0, k1, &mut row_k);
                        let mut shared = shared_panel.lock().expect("panel lock poisoned");
                        shared[..width * n]
                            .copy_from_slice(&block[(k0 - row_start) * n..(k1 - row_start) * n]);
                    }
                    // All workers see the closed pivot rows before relaxing.
                    barrier.wait();
                    panel[..width * n].copy_from_slice(
                        &shared_panel.lock().expect("panel lock poisoned")[..width * n],
                    );
                    if owns_pivot {
                        let (before, rest) = block.split_at_mut((k0 - row_start) * n);
                        let after = &mut rest[width * n..];
                        relax_rows(before, &panel, &mut pa, n, tile, k0, k1);
                        relax_rows(after, &panel, &mut pa, n, tile, k0, k1);
                    } else {
                        relax_rows(block, &panel, &mut pa, n, tile, k0, k1);
                    }
                    // Nobody may publish block kb + 1 while a worker still
                    // reads the shared panel for block kb.
                    barrier.wait();
                }
            });
        }
    });
}

impl ConsensusMethod for SchulzeAggregator {
    fn name(&self) -> &'static str {
        "Schulze"
    }

    fn aggregate(&self, profile: &RankingProfile) -> Result<Ranking> {
        Ok(self.consensus(profile))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn unanimous_profile_returns_the_common_ranking() {
        let r = Ranking::from_ids([2, 0, 3, 1]).unwrap();
        let profile = RankingProfile::new(vec![r.clone(); 4]).unwrap();
        assert_eq!(SchulzeAggregator::new().consensus(&profile), r);
    }

    #[test]
    fn condorcet_winner_is_ranked_first() {
        let profile = RankingProfile::new(vec![
            Ranking::from_ids([1, 0, 2]).unwrap(),
            Ranking::from_ids([1, 2, 0]).unwrap(),
            Ranking::from_ids([0, 1, 2]).unwrap(),
        ])
        .unwrap();
        let consensus = SchulzeAggregator::new().consensus(&profile);
        assert_eq!(consensus.candidate_at(0), CandidateId(1));
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn strongest_paths_classic_example() {
        // Wikipedia-style 3-candidate cycle check: A > B (2 of 3), B > C (2 of 3), C > A (2 of 3)
        // forms a majority cycle; strongest paths must still be computed consistently.
        let profile = RankingProfile::new(vec![
            Ranking::from_ids([0, 1, 2]).unwrap(),
            Ranking::from_ids([1, 2, 0]).unwrap(),
            Ranking::from_ids([2, 0, 1]).unwrap(),
        ])
        .unwrap();
        let matrix = profile.precedence_matrix();
        let p = SchulzeAggregator::new().strongest_paths(&matrix);
        // Every direct majority edge has weight 2, and the cycle gives every pair a path of
        // strength 2 in both directions -> complete tie.
        for a in 0..3 {
            for b in 0..3 {
                if a != b {
                    assert_eq!(p[a][b], 2, "p[{a}][{b}]");
                }
            }
        }
        // Ties are broken by id, so the consensus is the identity ranking.
        let consensus = SchulzeAggregator::new().consensus_from_matrix(&matrix);
        assert_eq!(consensus, Ranking::identity(3));
    }

    #[test]
    #[allow(clippy::needless_range_loop)]
    fn strongest_path_at_least_direct_support() {
        let mut rng = StdRng::seed_from_u64(23);
        let rankings: Vec<Ranking> = (0..7).map(|_| Ranking::random(6, &mut rng)).collect();
        let profile = RankingProfile::new(rankings).unwrap();
        let matrix = profile.precedence_matrix();
        let p = SchulzeAggregator::new().strongest_paths(&matrix);
        for a in 0..6 {
            for b in 0..6 {
                if a == b {
                    continue;
                }
                let (ca, cb) = (CandidateId(a as u32), CandidateId(b as u32));
                let support = matrix.support_for(ca, cb) as u64;
                let against = matrix.support_for(cb, ca) as u64;
                if support > against {
                    assert!(p[a][b] >= support);
                }
            }
        }
    }

    #[test]
    fn flat_kernel_matches_reference_across_thread_counts() {
        let mut rng = StdRng::seed_from_u64(77);
        for n in [1usize, 2, 3, 7, 12, 25] {
            let rankings: Vec<Ranking> = (0..9).map(|_| Ranking::random(n, &mut rng)).collect();
            let matrix = RankingProfile::new(rankings).unwrap().precedence_matrix();
            let reference = SchulzeAggregator::new().strongest_paths(&matrix);
            assert_eq!(
                SchulzeAggregator::new()
                    .strongest_paths_flat(&matrix)
                    .to_nested(),
                reference,
                "flat kernel, n = {n}"
            );
            for threads in [1usize, 2, 3, 8] {
                let par = Parallelism::new(threads).with_min_candidates(0);
                let flat = SchulzeAggregator::new().strongest_paths_matrix(&matrix, &par);
                assert_eq!(flat.num_candidates(), n);
                assert_eq!(flat.to_nested(), reference, "n = {n}, threads = {threads}");
                assert_eq!(
                    SchulzeAggregator::new().consensus_from_matrix_with(&matrix, &par),
                    SchulzeAggregator::new().consensus_from_matrix(&matrix),
                );
            }
        }
    }

    #[test]
    fn tiled_kernel_matches_reference_across_tile_sizes_and_threads() {
        let mut rng = StdRng::seed_from_u64(4242);
        for n in [2usize, 5, 13, 31, 64, 70] {
            let rankings: Vec<Ranking> = (0..7).map(|_| Ranking::random(n, &mut rng)).collect();
            let matrix = RankingProfile::new(rankings).unwrap().precedence_matrix();
            let reference = SchulzeAggregator::new().strongest_paths_flat(&matrix);
            for tile in [1usize, 3, 8, 32, 64, n] {
                for threads in [1usize, 2, 8] {
                    let par = Parallelism::new(threads)
                        .with_min_candidates(0)
                        .with_tile_size(tile);
                    let tiled = SchulzeAggregator::new().strongest_paths_matrix(&matrix, &par);
                    assert_eq!(
                        tiled, reference,
                        "n = {n}, tile = {tile}, threads = {threads}"
                    );
                }
            }
        }
    }

    #[test]
    fn tiled_solves_bump_kernel_counters() {
        let mut rng = StdRng::seed_from_u64(9);
        let rankings: Vec<Ranking> = (0..5).map(|_| Ranking::random(20, &mut rng)).collect();
        let matrix = RankingProfile::new(rankings).unwrap().precedence_matrix();
        let before = mani_ranking::kernel_counter_snapshot();
        let par = Parallelism::serial().with_tile_size(8);
        SchulzeAggregator::new().strongest_paths_matrix(&matrix, &par);
        let after = mani_ranking::kernel_counter_snapshot();
        assert!(after.fw_blocked_solves > before.fw_blocked_solves);
        // 20 candidates at tile 8 -> 3 tile rows -> 27 tile relaxations.
        assert!(after.fw_tiles_relaxed >= before.fw_tiles_relaxed + 27);
    }

    proptest! {
        #[test]
        fn prop_flat_kernel_bit_identical_to_reference(
            n in 1usize..14,
            m in 1usize..8,
            threads in 1usize..9,
            seed in any::<u64>()
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let rankings: Vec<Ranking> = (0..m).map(|_| Ranking::random(n, &mut rng)).collect();
            let matrix = RankingProfile::new(rankings).unwrap().precedence_matrix();
            let par = Parallelism::new(threads).with_min_candidates(0);
            let flat = SchulzeAggregator::new().strongest_paths_matrix(&matrix, &par);
            prop_assert_eq!(flat.to_nested(), SchulzeAggregator::new().strongest_paths(&matrix));
        }

        #[test]
        fn prop_tiled_kernel_bit_identical_to_flat(
            n in 1usize..20,
            m in 1usize..8,
            tile in 1usize..9,
            threads in 1usize..9,
            seed in any::<u64>()
        ) {
            let mut rng = StdRng::seed_from_u64(seed);
            let rankings: Vec<Ranking> = (0..m).map(|_| Ranking::random(n, &mut rng)).collect();
            let matrix = RankingProfile::new(rankings).unwrap().precedence_matrix();
            let par = Parallelism::new(threads).with_min_candidates(0).with_tile_size(tile);
            let tiled = SchulzeAggregator::new().strongest_paths_matrix(&matrix, &par);
            prop_assert_eq!(tiled, SchulzeAggregator::new().strongest_paths_flat(&matrix));
        }

        #[test]
        fn prop_schulze_is_valid_permutation(n in 1usize..15, m in 1usize..8, seed in any::<u64>()) {
            let mut rng = StdRng::seed_from_u64(seed);
            let rankings: Vec<Ranking> = (0..m).map(|_| Ranking::random(n, &mut rng)).collect();
            let profile = RankingProfile::new(rankings).unwrap();
            let consensus = SchulzeAggregator::new().consensus(&profile);
            prop_assert!(consensus.check_invariants().is_ok());
        }

        #[test]
        fn prop_unanimous_profile_is_reproduced(n in 2usize..12, seed in any::<u64>()) {
            let mut rng = StdRng::seed_from_u64(seed);
            let base = Ranking::random(n, &mut rng);
            let profile = RankingProfile::new(vec![base.clone(); 3]).unwrap();
            prop_assert_eq!(SchulzeAggregator::new().consensus(&profile), base);
        }
    }
}
