//! Local search refinement towards the Kemeny objective.
//!
//! Starting from any consensus ranking, repeatedly applies the best *adjacent* transposition
//! until no adjacent swap reduces the total pairwise disagreement with the precedence
//! matrix. Adjacent-swap local optimality is the classic "locally Kemeny optimal" condition
//! (Dwork et al. 2001); it is cheap (O(n) per sweep using the precedence matrix) and a
//! strong incumbent generator for the exact branch-and-bound solver.

use mani_ranking::{PrecedenceMatrix, Ranking, Result};

/// Configuration of the local search.
#[derive(Debug, Clone, Copy)]
pub struct LocalSearchConfig {
    /// Maximum number of full sweeps over the ranking (safety bound; the search usually
    /// converges much earlier).
    pub max_sweeps: usize,
}

impl Default for LocalSearchConfig {
    fn default() -> Self {
        Self { max_sweeps: 10_000 }
    }
}

/// Refines `start` towards the Kemeny objective by adjacent transpositions.
///
/// Returns the refined ranking and its total disagreement cost. The result never has a
/// higher cost than `start`.
pub fn kemeny_local_search(
    matrix: &PrecedenceMatrix,
    start: &Ranking,
    config: LocalSearchConfig,
) -> Result<(Ranking, u64)> {
    let mut current = start.clone();
    let mut cost = matrix.total_disagreements(&current)?;
    let n = current.len();
    if n < 2 {
        return Ok((current, cost));
    }
    for _sweep in 0..config.max_sweeps {
        let mut improved = false;
        for pos in 0..n - 1 {
            let above = current.candidate_at(pos);
            let below = current.candidate_at(pos + 1);
            // Cost contribution of this adjacent pair in its two orders:
            let keep = matrix.disagreements_if_above(above, below) as u64;
            let swap = matrix.disagreements_if_above(below, above) as u64;
            if swap < keep {
                current.swap_positions(pos, pos + 1);
                cost = cost - keep + swap;
                improved = true;
            }
        }
        if !improved {
            break;
        }
    }
    debug_assert_eq!(cost, matrix.total_disagreements(&current)?);
    Ok((current, cost))
}

#[cfg(test)]
mod tests {
    use super::*;
    use mani_ranking::RankingProfile;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn matrix_for(rankings: Vec<Ranking>) -> (RankingProfile, PrecedenceMatrix) {
        let profile = RankingProfile::new(rankings).unwrap();
        let matrix = profile.precedence_matrix();
        (profile, matrix)
    }

    #[test]
    fn unanimous_profile_converges_to_the_common_ranking() {
        let target = Ranking::from_ids([3, 1, 4, 0, 2]).unwrap();
        let (_, matrix) = matrix_for(vec![target.clone(); 3]);
        let (refined, cost) =
            kemeny_local_search(&matrix, &target.reversed(), LocalSearchConfig::default()).unwrap();
        assert_eq!(refined, target);
        assert_eq!(cost, 0);
    }

    #[test]
    fn never_increases_cost() {
        let mut rng = StdRng::seed_from_u64(31);
        let rankings: Vec<Ranking> = (0..6).map(|_| Ranking::random(8, &mut rng)).collect();
        let (_, matrix) = matrix_for(rankings);
        let start = Ranking::random(8, &mut rng);
        let start_cost = matrix.total_disagreements(&start).unwrap();
        let (refined, cost) =
            kemeny_local_search(&matrix, &start, LocalSearchConfig::default()).unwrap();
        assert!(cost <= start_cost);
        assert_eq!(cost, matrix.total_disagreements(&refined).unwrap());
    }

    #[test]
    fn single_candidate_is_a_fixed_point() {
        let (_, matrix) = matrix_for(vec![Ranking::identity(1)]);
        let (refined, cost) =
            kemeny_local_search(&matrix, &Ranking::identity(1), LocalSearchConfig::default())
                .unwrap();
        assert_eq!(refined, Ranking::identity(1));
        assert_eq!(cost, 0);
    }

    #[test]
    fn respects_sweep_budget() {
        let mut rng = StdRng::seed_from_u64(5);
        let rankings: Vec<Ranking> = (0..3).map(|_| Ranking::random(10, &mut rng)).collect();
        let (_, matrix) = matrix_for(rankings);
        let start = Ranking::random(10, &mut rng);
        // Zero sweeps: the start ranking is returned unchanged.
        let (refined, cost) =
            kemeny_local_search(&matrix, &start, LocalSearchConfig { max_sweeps: 0 }).unwrap();
        assert_eq!(refined, start);
        assert_eq!(cost, matrix.total_disagreements(&start).unwrap());
    }

    proptest! {
        #[test]
        fn prop_result_is_adjacent_swap_optimal(n in 2usize..10, m in 1usize..6, seed in any::<u64>()) {
            let mut rng = StdRng::seed_from_u64(seed);
            let rankings: Vec<Ranking> = (0..m).map(|_| Ranking::random(n, &mut rng)).collect();
            let (_, matrix) = matrix_for(rankings);
            let start = Ranking::random(n, &mut rng);
            let (refined, cost) = kemeny_local_search(&matrix, &start, LocalSearchConfig::default()).unwrap();
            prop_assert!(refined.check_invariants().is_ok());
            // no adjacent swap can improve further
            for pos in 0..n - 1 {
                let above = refined.candidate_at(pos);
                let below = refined.candidate_at(pos + 1);
                let keep = matrix.disagreements_if_above(above, below) as u64;
                let swap = matrix.disagreements_if_above(below, above) as u64;
                prop_assert!(swap >= keep);
            }
            prop_assert_eq!(cost, matrix.total_disagreements(&refined).unwrap());
        }
    }
}
