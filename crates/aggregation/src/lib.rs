//! # mani-aggregation
//!
//! Fairness-unaware rank aggregation (consensus ranking) methods used by the MANI-Rank
//! reproduction, both as baselines and as the building blocks of the Fair-* algorithms:
//!
//! * [`borda`] — Borda count: rank candidates by total points across base rankings.
//! * [`copeland`] — Copeland: rank candidates by pairwise contests won (ties count as wins
//!   for both sides).
//! * [`schulze`] — Schulze: strongest-path (widest-path) ordering computed with a
//!   Floyd–Warshall variant over the pairwise support graph.
//! * [`pick_a_perm`] — Pick-A-Perm: return the base ranking that minimises total Kendall
//!   distance to the profile (a classic 2-approximation of Kemeny).
//! * [`weighted`] — weighted profiles, used by the paper's Kemeny-Weighted baseline.
//! * [`local_search`] — adjacent-swap local search that refines any consensus towards the
//!   Kemeny objective; used as an anytime improver and as an incumbent generator for the
//!   exact solver.
//! * [`scoring`] — shared scoring helpers (Borda points, Copeland wins) on the precedence
//!   matrix.
//!
//! All methods implement the [`ConsensusMethod`] trait so experiment harnesses can treat
//! them uniformly.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod borda;
pub mod copeland;
pub mod local_search;
pub mod pick_a_perm;
pub mod schulze;
pub mod scoring;
pub mod traits;
pub mod weighted;

pub use borda::BordaAggregator;
pub use copeland::CopelandAggregator;
pub use local_search::{kemeny_local_search, LocalSearchConfig};
pub use pick_a_perm::PickAPerm;
pub use schulze::{PathMatrix, SchulzeAggregator};
pub use traits::ConsensusMethod;
pub use weighted::{weighted_precedence_matrix, WeightedProfile};
