//! Copeland aggregation (Copeland 1951): order candidates by pairwise contests won.
//!
//! A candidate "wins" a pairwise contest against another candidate when at least as many
//! base rankings prefer it (ties count as a win for both sides, following the paper's
//! Fair-Copeland description). Copeland is a Condorcet method and the fastest pairwise
//! consensus generator used in the paper.

use mani_ranking::{Parallelism, PrecedenceMatrix, Ranking, RankingProfile, Result};

use crate::borda::ranking_from_points;
use crate::traits::ConsensusMethod;

/// The Copeland consensus method.
#[derive(Debug, Clone, Copy, Default)]
pub struct CopelandAggregator;

impl CopelandAggregator {
    /// Creates a Copeland aggregator.
    pub fn new() -> Self {
        Self
    }

    /// Computes the Copeland consensus from a precomputed precedence matrix.
    pub fn consensus_from_matrix(&self, matrix: &PrecedenceMatrix) -> Ranking {
        self.consensus_from_matrix_with(matrix, &Parallelism::serial())
    }

    /// Computes the Copeland consensus from a precedence matrix under an
    /// explicit kernel-parallelism budget: the O(n²) win-count pass is sharded
    /// over candidate ranges, producing identical win counts (and hence the
    /// identical ranking) for every thread count.
    pub fn consensus_from_matrix_with(
        &self,
        matrix: &PrecedenceMatrix,
        parallelism: &Parallelism,
    ) -> Ranking {
        let wins: Vec<u64> = matrix
            .copeland_wins_parallel(parallelism)
            .into_iter()
            .map(u64::from)
            .collect();
        ranking_from_points(&wins)
    }

    /// Computes the Copeland consensus for a profile.
    pub fn consensus(&self, profile: &RankingProfile) -> Ranking {
        self.consensus_from_matrix(&profile.precedence_matrix())
    }
}

impl ConsensusMethod for CopelandAggregator {
    fn name(&self) -> &'static str {
        "Copeland"
    }

    fn aggregate(&self, profile: &RankingProfile) -> Result<Ranking> {
        Ok(self.consensus(profile))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mani_ranking::CandidateId;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn unanimous_profile_returns_the_common_ranking() {
        let r = Ranking::from_ids([1, 3, 0, 2]).unwrap();
        let profile = RankingProfile::new(vec![r.clone(); 3]).unwrap();
        assert_eq!(CopelandAggregator::new().consensus(&profile), r);
    }

    #[test]
    fn condorcet_winner_is_ranked_first() {
        // Candidate 2 beats every other candidate in a majority of rankings.
        let profile = RankingProfile::new(vec![
            Ranking::from_ids([2, 0, 1, 3]).unwrap(),
            Ranking::from_ids([2, 1, 3, 0]).unwrap(),
            Ranking::from_ids([0, 2, 1, 3]).unwrap(),
        ])
        .unwrap();
        let consensus = CopelandAggregator::new().consensus(&profile);
        assert_eq!(consensus.candidate_at(0), CandidateId(2));
    }

    #[test]
    fn matrix_and_profile_entry_points_agree() {
        let mut rng = StdRng::seed_from_u64(17);
        let rankings: Vec<Ranking> = (0..5).map(|_| Ranking::random(7, &mut rng)).collect();
        let profile = RankingProfile::new(rankings).unwrap();
        let agg = CopelandAggregator::new();
        assert_eq!(
            agg.consensus(&profile),
            agg.consensus_from_matrix(&profile.precedence_matrix())
        );
        assert_eq!(agg.name(), "Copeland");
    }

    #[test]
    fn parallel_scoring_matches_serial_consensus() {
        let mut rng = StdRng::seed_from_u64(31);
        let rankings: Vec<Ranking> = (0..6).map(|_| Ranking::random(9, &mut rng)).collect();
        let matrix = RankingProfile::new(rankings).unwrap().precedence_matrix();
        let agg = CopelandAggregator::new();
        for threads in [1usize, 2, 8] {
            let par = mani_ranking::Parallelism::new(threads).with_min_candidates(0);
            assert_eq!(
                agg.consensus_from_matrix_with(&matrix, &par),
                agg.consensus_from_matrix(&matrix),
                "threads = {threads}"
            );
        }
    }

    proptest! {
        #[test]
        fn prop_copeland_is_valid_permutation(n in 1usize..25, m in 1usize..8, seed in any::<u64>()) {
            let mut rng = StdRng::seed_from_u64(seed);
            let rankings: Vec<Ranking> = (0..m).map(|_| Ranking::random(n, &mut rng)).collect();
            let profile = RankingProfile::new(rankings).unwrap();
            let consensus = CopelandAggregator::new().consensus(&profile);
            prop_assert!(consensus.check_invariants().is_ok());
        }

        #[test]
        fn prop_unanimous_pairwise_preferences_are_respected(n in 2usize..15, seed in any::<u64>()) {
            // When all base rankings are identical, Copeland must reproduce that ranking's
            // pairwise order for every pair (it is a Condorcet method).
            let mut rng = StdRng::seed_from_u64(seed);
            let base = Ranking::random(n, &mut rng);
            let profile = RankingProfile::new(vec![base.clone(), base.clone(), base.clone()]).unwrap();
            let consensus = CopelandAggregator::new().consensus(&profile);
            for i in 0..n as u32 {
                for j in 0..n as u32 {
                    if i == j { continue; }
                    let (a, b) = (CandidateId(i), CandidateId(j));
                    prop_assert_eq!(consensus.prefers(a, b), base.prefers(a, b));
                }
            }
        }
    }
}
