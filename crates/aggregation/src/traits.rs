//! The [`ConsensusMethod`] trait: a uniform interface over rank aggregation algorithms.

use mani_ranking::{Ranking, RankingProfile, Result};

/// A rank aggregation algorithm: consumes a profile of base rankings and produces a single
/// consensus ranking.
///
/// Implementations must be deterministic: ties are broken by candidate id so that repeated
/// runs (and the experiment harness) produce identical output.
pub trait ConsensusMethod {
    /// Human-readable method name used in experiment output (e.g. `"Borda"`).
    fn name(&self) -> &'static str;

    /// Computes the consensus ranking for a profile.
    fn aggregate(&self, profile: &RankingProfile) -> Result<Ranking>;
}

#[cfg(test)]
mod tests {
    use super::*;

    struct FirstRanking;

    impl ConsensusMethod for FirstRanking {
        fn name(&self) -> &'static str {
            "First"
        }

        fn aggregate(&self, profile: &RankingProfile) -> Result<Ranking> {
            Ok(profile.rankings()[0].clone())
        }
    }

    #[test]
    fn trait_objects_are_usable() {
        let method: Box<dyn ConsensusMethod> = Box::new(FirstRanking);
        let profile =
            RankingProfile::new(vec![Ranking::identity(3), Ranking::identity(3).reversed()])
                .unwrap();
        let consensus = method.aggregate(&profile).unwrap();
        assert_eq!(consensus, Ranking::identity(3));
        assert_eq!(method.name(), "First");
    }
}
